#include "runtime/hybrid_trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "runtime/protocol.hpp"
#include "runtime/sync.hpp"

namespace hyscale {

HybridTrainer::HybridTrainer(const Dataset& dataset, PlatformSpec platform,
                             HybridTrainerConfig config)
    : dataset_(dataset), platform_(std::move(platform)), config_(std::move(config)), drm_() {
  ModelConfig model_config;
  model_config.kind = config_.model_kind;
  model_config.dims = {dataset_.info.f0, dataset_.info.f1, dataset_.info.f2};
  // The paper always trains 2-layer models; support deeper fanouts by
  // inserting extra hidden layers of width f1 (used for the DistDGLv2
  // 3-layer comparison, Table V).
  while (static_cast<int>(model_config.dims.size()) - 1 <
         static_cast<int>(config_.fanouts.size())) {
    model_config.dims.insert(model_config.dims.begin() + 1, dataset_.info.f1);
  }
  model_config.seed = config_.seed;

  perf_model_ = std::make_unique<PerformanceModel>(platform_, model_config, dataset_.info,
                                                   config_.fanouts);
  perf_model_->set_transfer_bytes_per_element(
      wire_bytes_per_element(config_.transfer_precision));

  if (config_.use_task_mapper) {
    TaskMapperOptions mapper_options;
    mapper_options.per_trainer_batch = config_.per_trainer_batch;
    mapper_options.hybrid = config_.hybrid;
    mapper_options.mode = config_.pipeline;
    initial_workload_ = initial_task_mapping(*perf_model_, mapper_options);
  } else {
    // Uninformed heuristic mapping (no performance model).
    initial_workload_.num_accelerators = platform_.num_accelerators();
    initial_workload_.accel_batch =
        initial_workload_.num_accelerators > 0 ? config_.per_trainer_batch : 0;
    initial_workload_.cpu_batch = config_.hybrid || initial_workload_.num_accelerators == 0
                                      ? config_.per_trainer_batch / 2
                                      : 0;
    initial_workload_.threads.total = platform_.cpu_threads;
    initial_workload_.threads.sampler = platform_.cpu_threads / 4;
    initial_workload_.threads.loader = platform_.cpu_threads / 4;
    initial_workload_.threads.trainer = platform_.cpu_threads / 2;
  }
  if (!config_.hybrid) initial_workload_.cpu_batch = 0;
  workload_ = initial_workload_;

  DrmConfig drm_config;
  drm_config.accel_sampling_available =
      config_.accel_sampling && platform_.num_accelerators() > 0 &&
      SamplerModel::accelerator_rate(platform_.accelerators.front()) > 0.0;
  drm_ = DrmEngine(drm_config);

  // One model replica + optimizer per trainer: replica 0 is the CPU
  // trainer, replicas 1..k the accelerators.  All start from identical
  // weights (replicated initial model).
  const int num_trainers = 1 + platform_.num_accelerators();
  for (int t = 0; t < num_trainers; ++t) {
    replicas_.push_back(std::make_unique<GnnModel>(model_config));
    optimizers_.push_back(std::make_unique<SgdOptimizer>(config_.learning_rate));
  }
  for (std::size_t t = 1; t < replicas_.size(); ++t) {
    replicas_[t]->copy_values_from(*replicas_.front());
  }

  sampler_ = std::make_unique<NeighborSampler>(dataset_.graph, config_.fanouts, config_.seed);
  loader_ = std::make_unique<FeatureLoader>(dataset_.features);
}

std::vector<VertexId> HybridTrainer::next_real_seeds(std::int64_t count, std::uint64_t salt) {
  if (shuffled_train_.empty() || train_cursor_ + static_cast<std::size_t>(count) >
                                     shuffled_train_.size()) {
    shuffled_train_ = dataset_.train_ids;
    Xoshiro256 rng(config_.seed + 77770 + (shuffle_round_++) + salt);
    for (std::size_t i = shuffled_train_.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(rng.bounded(i));
      std::swap(shuffled_train_[i - 1], shuffled_train_[j]);
    }
    train_cursor_ = 0;
  }
  const auto take = std::min<std::size_t>(static_cast<std::size_t>(count),
                                          shuffled_train_.size());
  std::vector<VertexId> seeds(shuffled_train_.begin() + static_cast<std::ptrdiff_t>(train_cursor_),
                              shuffled_train_.begin() +
                                  static_cast<std::ptrdiff_t>(train_cursor_ + take));
  train_cursor_ += take;
  return seeds;
}

HybridTrainer::RealIterationResult HybridTrainer::run_real_iteration() {
  RealIterationResult result;
  const int num_trainers = static_cast<int>(replicas_.size());

  // Split the (scaled) real batch proportionally to the simulated
  // workload assignment so the numerics follow the same skew DRM creates.
  const std::int64_t sim_total = std::max<std::int64_t>(1, workload_.total_batch());
  std::vector<std::int64_t> real_sizes(static_cast<std::size_t>(num_trainers), 0);
  real_sizes[0] = config_.real_batch_total * workload_.cpu_batch / sim_total;
  for (int a = 0; a < platform_.num_accelerators(); ++a) {
    real_sizes[static_cast<std::size_t>(a) + 1] =
        config_.real_batch_total * workload_.accel_batch / sim_total;
  }
  // Guarantee at least one active trainer.
  if (std::accumulate(real_sizes.begin(), real_sizes.end(), std::int64_t{0}) == 0) {
    real_sizes[num_trainers > 1 ? 1 : 0] = config_.real_batch_total;
  }

  // Sample + load features for every trainer (Sampler + Feature Loader
  // stages), measuring the edge-count jitter against expectation.
  std::vector<MiniBatch> batches(static_cast<std::size_t>(num_trainers));
  std::vector<Tensor> features(static_cast<std::size_t>(num_trainers));
  double measured_edges = 0.0, expected_edges = 0.0;
  for (int t = 0; t < num_trainers; ++t) {
    const std::int64_t size = real_sizes[static_cast<std::size_t>(t)];
    if (size == 0) continue;
    auto seeds = next_real_seeds(size, static_cast<std::uint64_t>(t));
    batches[static_cast<std::size_t>(t)] = sampler_->sample(seeds);
    loader_->load(batches[static_cast<std::size_t>(t)], features[static_cast<std::size_t>(t)]);
    // int8 transfers round-trip the accelerator trainers' inputs through
    // real quantization (t == 0 is the CPU trainer: no PCIe hop).
    if (t > 0 && config_.transfer_precision == TransferPrecision::kInt8) {
      quantize_roundtrip_int8(features[static_cast<std::size_t>(t)]);
    }
    measured_edges +=
        static_cast<double>(batches[static_cast<std::size_t>(t)].stats().total_edges());
    const BatchStats expect = NeighborSampler::expected_stats(
        size, config_.fanouts, dataset_.graph.mean_degree(),
        static_cast<std::uint64_t>(dataset_.graph.num_vertices()));
    expected_edges += static_cast<double>(expect.total_edges());
  }
  result.edge_jitter =
      expected_edges > 0.0 ? std::clamp(measured_edges / expected_edges, 0.5, 2.0) : 1.0;

  // Forward/backward on every active trainer through the Processor-
  // Accelerator Training Protocol (Listing 1): trainer threads signal
  // DONE, the synchronizer all-reduces, ACK releases the weight update.
  TrainingProtocol protocol(num_trainers);
  std::vector<double> losses(static_cast<std::size_t>(num_trainers), 0.0);
  std::vector<double> accuracies(static_cast<std::size_t>(num_trainers), 0.0);

  std::vector<std::thread> trainer_threads;
  trainer_threads.reserve(static_cast<std::size_t>(num_trainers));
  for (int t = 0; t < num_trainers; ++t) {
    trainer_threads.emplace_back([&, t] {
      GnnModel& replica = *replicas_[static_cast<std::size_t>(t)];
      replica.zero_grad();
      if (real_sizes[static_cast<std::size_t>(t)] > 0) {
        const MiniBatch& batch = batches[static_cast<std::size_t>(t)];
        const Tensor logits = replica.forward(batch, features[static_cast<std::size_t>(t)]);
        std::vector<int> labels(batch.seeds.size());
        for (std::size_t i = 0; i < batch.seeds.size(); ++i) {
          labels[i] = dataset_.labels[static_cast<std::size_t>(batch.seeds[i])];
        }
        LossResult loss = softmax_cross_entropy(logits, labels);
        replica.backward(batch, loss.d_logits);
        losses[static_cast<std::size_t>(t)] = loss.loss;
        accuracies[static_cast<std::size_t>(t)] =
            static_cast<double>(loss.correct) / static_cast<double>(batch.seeds.size());
      }
      protocol.trainer_done();
      protocol.wait_ack();
      // Weight update after the averaged gradients arrive.
      auto params = replica.parameters();
      optimizers_[static_cast<std::size_t>(t)]->step(params);
    });
  }

  // Synchronizer (runs on the "CPU", §III-B): wait DONE == n, all-reduce
  // weighted by per-trainer seed counts, broadcast ACK.
  protocol.wait_all_done();
  std::vector<GnnModel*> views;
  views.reserve(replicas_.size());
  for (auto& r : replicas_) views.push_back(r.get());
  Synchronizer::allreduce(views, real_sizes);
  const std::int64_t generation = protocol.broadcast_ack();
  protocol.wait_iteration_complete(generation);
  for (auto& thread : trainer_threads) thread.join();

  double weight_sum = 0.0;
  for (int t = 0; t < num_trainers; ++t) {
    const auto w = static_cast<double>(real_sizes[static_cast<std::size_t>(t)]);
    result.loss += losses[static_cast<std::size_t>(t)] * w;
    result.accuracy += accuracies[static_cast<std::size_t>(t)] * w;
    weight_sum += w;
  }
  if (weight_sum > 0.0) {
    result.loss /= weight_sum;
    result.accuracy /= weight_sum;
  }
  return result;
}

BatchStats HybridTrainer::jittered_expected_stats(std::int64_t batch, double jitter) const {
  BatchStats stats = perf_model_->expected_stats(batch);
  for (auto& v : stats.vertices_per_layer)
    v = static_cast<std::int64_t>(static_cast<double>(v) * jitter);
  for (auto& e : stats.edges_per_layer)
    e = static_cast<std::int64_t>(static_cast<double>(e) * jitter);
  return stats;
}

StageTimes HybridTrainer::simulate_stage_times(double jitter) const {
  const BatchStats cpu_stats =
      workload_.cpu_batch > 0 ? jittered_expected_stats(workload_.cpu_batch, jitter)
                              : BatchStats{};
  std::vector<BatchStats> accel_stats;
  if (workload_.num_accelerators > 0 && workload_.accel_batch > 0) {
    accel_stats.assign(static_cast<std::size_t>(workload_.num_accelerators),
                       jittered_expected_stats(workload_.accel_batch, jitter));
  }
  StageTimes times = perf_model_->stage_times(workload_, cpu_stats, accel_stats);
  // Overheads outside the analytic model (§VI-C): kernel launch set-up
  // and pipeline flush.
  if (workload_.num_accelerators > 0) {
    times.train_accel += config_.launch_overhead;
    times.train_accel *= 1.0 + config_.flush_overhead_fraction;
  }
  times.train_cpu *= 1.0 + config_.flush_overhead_fraction;
  return times;
}

EpochReport HybridTrainer::train_epoch() {
  EpochReport report;
  report.iterations = perf_model_->iterations_per_epoch(workload_);

  Xoshiro256 jitter_rng(config_.seed + 31337 + static_cast<std::uint64_t>(epoch_counter_));
  ++epoch_counter_;

  double total_edges = 0.0;
  double loss_sum = 0.0, acc_sum = 0.0;
  long real_iters = 0;

  Accumulator acc_sample, acc_load, acc_transfer, acc_train_cpu, acc_train_accel, acc_sync;

  for (long iter = 0; iter < report.iterations; ++iter) {
    double jitter = 1.0;
    if (config_.real_compute && iter < config_.real_iterations_cap) {
      const RealIterationResult real = run_real_iteration();
      loss_sum += real.loss;
      acc_sum += real.accuracy;
      jitter = real.edge_jitter;
      ++real_iters;
    } else {
      // Synthetic sampling variance, matching the ~3% relative std-dev
      // observed from the real sampler.
      jitter = std::clamp(1.0 + 0.03 * jitter_rng.normal(), 0.8, 1.2);
    }

    const StageTimes times = simulate_stage_times(jitter);
    const Seconds iter_time =
        iteration_time(times, config_.pipeline) * (1.0 + config_.barrier_overhead_fraction) +
        config_.barrier_latency;
    report.epoch_time += iter_time;

    acc_sample.add(times.sampling());
    acc_load.add(times.load);
    acc_transfer.add(times.transfer);
    acc_train_cpu.add(times.train_cpu);
    acc_train_accel.add(times.train_accel);
    acc_sync.add(times.sync);

    // Edges traversed this iteration (Eq. 5 numerator).
    if (workload_.cpu_batch > 0)
      total_edges += static_cast<double>(
          jittered_expected_stats(workload_.cpu_batch, jitter).total_edges());
    if (workload_.num_accelerators > 0)
      total_edges += static_cast<double>(
                         jittered_expected_stats(workload_.accel_batch, jitter).total_edges()) *
                     workload_.num_accelerators;

    IterationRecord record;
    record.iteration = iter;
    record.times = times;
    record.iteration_time = iter_time;
    record.workload = workload_;
    if (config_.drm) {
      record.drm_action = drm_.step(times, workload_);
      // Validate the move against the performance model before keeping
      // it: a bottleneck-guided step that the model predicts to slow the
      // pipeline down (e.g. starving a stage that is about to become the
      // new bottleneck) is rolled back.  This keeps DRM monotone.
      if (record.drm_action.kind != DrmAction::Kind::kNone) {
        const WorkloadAssignment proposed = workload_;
        workload_ = record.workload;
        const Seconds t_old = iteration_time(simulate_stage_times(1.0), config_.pipeline);
        workload_ = proposed;
        const Seconds t_new = iteration_time(simulate_stage_times(1.0), config_.pipeline);
        if (t_new > t_old * 1.001) {
          workload_ = record.workload;  // reject the harmful move
          record.drm_action.kind = DrmAction::Kind::kNone;
        }
      }
    }
    if (static_cast<int>(report.trajectory.size()) < config_.trajectory_cap) {
      report.trajectory.push_back(std::move(record));
    }
  }

  // Pipeline fill cost, once per epoch.
  if (report.iterations > 0) {
    const StageTimes steady = simulate_stage_times(1.0);
    report.epoch_time +=
        std::max(0.0, steady.sampling() + steady.load + steady.transfer + steady.propagation() -
                          iteration_time(steady, config_.pipeline));
  }

  report.mteps = report.epoch_time > 0.0 ? total_edges / report.epoch_time / 1e6 : 0.0;
  report.loss = real_iters > 0 ? loss_sum / static_cast<double>(real_iters) : 0.0;
  report.train_accuracy = real_iters > 0 ? acc_sum / static_cast<double>(real_iters) : 0.0;
  report.mean_times.sample_cpu = acc_sample.mean();
  report.mean_times.load = acc_load.mean();
  report.mean_times.transfer = acc_transfer.mean();
  report.mean_times.train_cpu = acc_train_cpu.mean();
  report.mean_times.train_accel = acc_train_accel.mean();
  report.mean_times.sync = acc_sync.mean();
  report.final_workload = workload_;

  log_message(LogLevel::kInfo, "hybrid", "epoch done: time=", report.epoch_time,
              "s mteps=", report.mteps, " loss=", report.loss);
  return report;
}

std::vector<EpochReport> HybridTrainer::train(int epochs) {
  std::vector<EpochReport> reports;
  reports.reserve(static_cast<std::size_t>(epochs));
  for (int e = 0; e < epochs; ++e) reports.push_back(train_epoch());
  return reports;
}

Seconds HybridTrainer::predicted_epoch_time() const {
  return perf_model_->predict_epoch(initial_workload_, config_.pipeline);
}

double HybridTrainer::evaluate_accuracy(std::int64_t max_seeds) {
  const auto count = std::min<std::int64_t>(
      max_seeds, static_cast<std::int64_t>(dataset_.train_ids.size()));
  std::vector<VertexId> seeds(dataset_.train_ids.begin(),
                              dataset_.train_ids.begin() + static_cast<std::ptrdiff_t>(count));
  MiniBatch batch = sampler_->sample(seeds);
  Tensor x;
  loader_->load(batch, x);
  const Tensor logits = replicas_.front()->forward(batch, x);
  std::vector<int> labels(batch.seeds.size());
  for (std::size_t i = 0; i < batch.seeds.size(); ++i) {
    labels[i] = dataset_.labels[static_cast<std::size_t>(batch.seeds[i])];
  }
  return accuracy(logits, labels);
}

}  // namespace hyscale
