#include "runtime/stage_times.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/strutil.hpp"

namespace hyscale {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kSampleAccel: return "TSA";
    case Stage::kSampleCpu: return "TSC";
    case Stage::kLoad: return "TLoad";
    case Stage::kTransfer: return "TTran";
    case Stage::kTrainCpu: return "TTC";
    case Stage::kTrainAccel: return "TTA";
  }
  return "?";
}

Seconds StageTimes::get(Stage stage) const {
  switch (stage) {
    case Stage::kSampleAccel: return sample_accel;
    case Stage::kSampleCpu: return sample_cpu;
    case Stage::kLoad: return load;
    case Stage::kTransfer: return transfer;
    case Stage::kTrainCpu: return train_cpu;
    case Stage::kTrainAccel: return train_accel;
  }
  throw std::invalid_argument("StageTimes::get: unknown stage");
}

std::string StageTimes::to_string() const {
  auto ms = [](Seconds s) { return format_double(s * 1e3, 3) + "ms"; };
  return "TSC=" + ms(sample_cpu) + " TSA=" + ms(sample_accel) + " TLoad=" + ms(load) +
         " TTran=" + ms(transfer) + " TTC=" + ms(train_cpu) + " TTA=" + ms(train_accel) +
         " Tsync=" + ms(sync);
}

const char* pipeline_mode_name(PipelineMode mode) {
  switch (mode) {
    case PipelineMode::kSequential: return "sequential";
    case PipelineMode::kSinglePrefetch: return "single-stage prefetch";
    case PipelineMode::kTwoStagePrefetch: return "two-stage prefetch";
  }
  return "?";
}

Seconds iteration_time(const StageTimes& t, PipelineMode mode) {
  switch (mode) {
    case PipelineMode::kSequential:
      return t.sampling() + t.load + t.transfer + t.propagation();
    case PipelineMode::kSinglePrefetch:
      // Loading and transfer fused into one prefetch stage.
      return std::max({t.sampling(), t.load + t.transfer, t.propagation()});
    case PipelineMode::kTwoStagePrefetch:
      // Eq. 6: the four stages each occupy their own pipeline slot; the
      // slowest one sets the steady-state iteration time.
      return std::max({t.sampling(), t.load, t.transfer, t.propagation()});
  }
  throw std::invalid_argument("iteration_time: unknown mode");
}

namespace {
int pipeline_depth(PipelineMode mode) {
  switch (mode) {
    case PipelineMode::kSequential: return 1;
    case PipelineMode::kSinglePrefetch: return 3;
    case PipelineMode::kTwoStagePrefetch: return 4;
  }
  return 1;
}
}  // namespace

Seconds epoch_time(const StageTimes& t, PipelineMode mode, long iterations) {
  if (iterations <= 0) return 0.0;
  const Seconds steady = iteration_time(t, mode);
  // Fill/drain: the first batch flows through every stage sequentially.
  const Seconds fill = t.sampling() + t.load + t.transfer + t.propagation() - steady;
  const int depth = pipeline_depth(mode);
  if (iterations < depth) {
    return t.sampling() + t.load + t.transfer + t.propagation() +
           static_cast<double>(iterations - 1) * steady;
  }
  return std::max(fill, 0.0) + static_cast<double>(iterations) * steady;
}

}  // namespace hyscale
