#include "runtime/feature_cache.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/reorder.hpp"
#include "tensor/ops.hpp"

namespace hyscale {

StaticFeatureCache::StaticFeatureCache(const CsrGraph& graph, const Tensor& features,
                                       std::int64_t capacity_rows)
    : features_(features) {
  if (features.rows() != graph.num_vertices())
    throw std::invalid_argument("StaticFeatureCache: features/graph size mismatch");
  if (capacity_rows < 0)
    throw std::invalid_argument("StaticFeatureCache: negative capacity");
  capacity_ = std::min<std::int64_t>(capacity_rows, graph.num_vertices());
  cached_.assign(static_cast<std::size_t>(graph.num_vertices()), false);
  // Degree-ordered: PaGraph's "computation-aware" policy caches the
  // vertices most likely to appear in sampled neighborhoods.
  const std::vector<VertexId> order = degree_order(graph);
  for (std::int64_t i = 0; i < capacity_; ++i) {
    cached_[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = true;
  }
}

StaticFeatureCache::LoadStats StaticFeatureCache::load(const MiniBatch& batch, Tensor& out) {
  const auto& nodes = batch.input_nodes();
  gather_rows(features_, std::span<const std::int64_t>(nodes.data(), nodes.size()), out);

  LoadStats stats;
  const double row_bytes = static_cast<double>(features_.cols()) * 4.0;
  for (VertexId v : nodes) {
    if (cached_[static_cast<std::size_t>(v)]) {
      ++stats.hits;
      stats.device_bytes += row_bytes;
    } else {
      ++stats.misses;
      stats.host_bytes += row_bytes;
    }
  }
  {
    std::lock_guard<std::mutex> lock(totals_mutex_);
    totals_.hits += stats.hits;
    totals_.misses += stats.misses;
    totals_.device_bytes += stats.device_bytes;
    totals_.host_bytes += stats.host_bytes;
  }
  return stats;
}

}  // namespace hyscale
