#include "runtime/feature_cache.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/reorder.hpp"
#include "tensor/simd.hpp"

namespace hyscale {

StaticFeatureCache::StaticFeatureCache(const CsrGraph& graph, const Tensor& features,
                                       std::int64_t capacity_rows,
                                       TransferPrecision precision)
    : features_(features), precision_(precision) {
  if (features.rows() != graph.num_vertices())
    throw std::invalid_argument("StaticFeatureCache: features/graph size mismatch");
  if (capacity_rows < 0)
    throw std::invalid_argument("StaticFeatureCache: negative capacity");
  if (precision == TransferPrecision::kFp16)
    throw std::invalid_argument(
        "StaticFeatureCache: fp16 device rows not implemented (use fp32 or int8)");
  capacity_ = std::min<std::int64_t>(capacity_rows, graph.num_vertices());
  slot_of_.assign(static_cast<std::size_t>(graph.num_vertices()), -1);
  access_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(graph.num_vertices()));
  for (std::int64_t v = 0; v < graph.num_vertices(); ++v)
    access_[static_cast<std::size_t>(v)].store(0, std::memory_order_relaxed);
  slot_hits_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(static_cast<std::size_t>(capacity_));
  for (std::int64_t s = 0; s < capacity_; ++s)
    slot_hits_[static_cast<std::size_t>(s)].store(0, std::memory_order_relaxed);
  if (precision_ == TransferPrecision::kInt8) {
    qvalues_.assign(static_cast<std::size_t>(capacity_ * features.cols()), 0);
    qscales_.assign(static_cast<std::size_t>(capacity_), 1.0f);
  } else {
    device_rows_.resize(capacity_, features.cols());
  }
  // Degree-ordered: PaGraph's "computation-aware" policy caches the
  // vertices most likely to appear in sampled neighborhoods.  rerank()
  // later folds observed traffic into this initial guess.
  const std::vector<VertexId> order = degree_order(graph);
  pinned_.reserve(static_cast<std::size_t>(capacity_));
  for (std::int64_t i = 0; i < capacity_; ++i) {
    const VertexId v = order[static_cast<std::size_t>(i)];
    slot_of_[static_cast<std::size_t>(v)] = i;
    pinned_.push_back(v);
    fill_slot_unlocked(i, v);
  }
}

double StaticFeatureCache::device_row_wire_bytes() const {
  const auto cols = static_cast<double>(features_.cols());
  return precision_ == TransferPrecision::kInt8 ? cols + 4.0 : cols * 4.0;
}

void StaticFeatureCache::copy_device_row_unlocked(std::int64_t slot, float* dst) const {
  const std::int64_t cols = features_.cols();
  if (precision_ == TransferPrecision::kInt8) {
    simd::dequant(qvalues_.data() + slot * cols, qscales_[static_cast<std::size_t>(slot)],
                  dst, cols);
  } else {
    simd::copy(device_rows_.row(slot).data(), dst, cols);
  }
}

void StaticFeatureCache::fill_slot_unlocked(std::int64_t slot, VertexId v) {
  const std::int64_t cols = features_.cols();
  const float* src = features_.row(v).data();
  if (precision_ == TransferPrecision::kInt8) {
    const float scale = int8_row_scale(src, cols);
    qscales_[static_cast<std::size_t>(slot)] = scale;
    quantize_row_int8(src, cols, scale, qvalues_.data() + slot * cols);
  } else {
    simd::copy(src, device_rows_.row(slot).data(), cols);
  }
}

void StaticFeatureCache::zero_slot_unlocked(std::int64_t slot) {
  const std::int64_t cols = features_.cols();
  if (precision_ == TransferPrecision::kInt8) {
    std::fill_n(qvalues_.begin() + static_cast<std::ptrdiff_t>(slot * cols), cols,
                static_cast<std::int8_t>(0));
    qscales_[static_cast<std::size_t>(slot)] = 1.0f;
  } else {
    const auto dst = device_rows_.row(slot);
    std::fill(dst.begin(), dst.end(), 0.0f);
  }
}

StaticFeatureCache::LoadStats StaticFeatureCache::load(const MiniBatch& batch, Tensor& out) {
  const auto& nodes = batch.input_nodes();
  out.resize(static_cast<std::int64_t>(nodes.size()), features_.cols());

  LoadStats stats;
  const double host_row_bytes = static_cast<double>(features_.cols()) * 4.0;
  const double device_row_bytes = device_row_wire_bytes();
  {
    std::shared_lock rows(rows_mutex_);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const VertexId v = nodes[i];
      bump_access(v);
      float* dst = out.row(static_cast<std::int64_t>(i)).data();
      const std::int64_t slot = slot_of_[static_cast<std::size_t>(v)];
      if (slot >= 0) {
        copy_device_row_unlocked(slot, dst);
        slot_hits_[static_cast<std::size_t>(slot)].fetch_add(1, std::memory_order_relaxed);
        ++stats.hits;
        stats.device_bytes += device_row_bytes;
      } else {
        simd::copy(features_.row(v).data(), dst, features_.cols());
        ++stats.misses;
        stats.host_bytes += host_row_bytes;
      }
    }
  }
  account(stats);
  return stats;
}

std::int64_t StaticFeatureCache::copy_cached_rows(std::span<const VertexId> nodes,
                                                  std::vector<char>& hit, Tensor& out) const {
  std::int64_t hits = 0;
  std::shared_lock rows(rows_mutex_);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const VertexId v = nodes[i];
    if (v < 0 || static_cast<std::size_t>(v) >= slot_of_.size()) continue;
    bump_access(v);
    const std::int64_t slot = slot_of_[static_cast<std::size_t>(v)];
    if (slot < 0) continue;
    copy_device_row_unlocked(slot, out.row(static_cast<std::int64_t>(i)).data());
    slot_hits_[static_cast<std::size_t>(slot)].fetch_add(1, std::memory_order_relaxed);
    hit[i] = 1;
    ++hits;
  }
  return hits;
}

bool StaticFeatureCache::copy_if_cached(VertexId v, std::span<float> dst) const {
  if (v < 0 || static_cast<std::size_t>(v) >= slot_of_.size()) return false;
  std::shared_lock rows(rows_mutex_);
  bump_access(v);
  const std::int64_t slot = slot_of_[static_cast<std::size_t>(v)];
  if (slot < 0) return false;
  copy_device_row_unlocked(slot, dst.data());
  slot_hits_[static_cast<std::size_t>(slot)].fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::int64_t StaticFeatureCache::invalidate(std::span<const VertexId> ids) {
  std::int64_t refreshed = 0;
  {
    std::unique_lock rows(rows_mutex_);
    for (VertexId v : ids) {
      if (v < 0 || static_cast<std::size_t>(v) >= slot_of_.size()) continue;
      const std::int64_t slot = slot_of_[static_cast<std::size_t>(v)];
      if (slot < 0) continue;
      fill_slot_unlocked(slot, v);
      ++refreshed;
    }
  }
  // A call that refreshed nothing (no pinned rows among `ids`) leaves
  // the freshness window intact — resetting it on no-ops would blank
  // the since_invalidate() signal under update streams that mostly
  // touch unpinned vertices.
  if (refreshed > 0) {
    std::lock_guard totals(totals_mutex_);
    ++invalidations_;
    invalidated_rows_ += refreshed;
    since_invalidate_ = {};
  }
  return refreshed;
}

std::int64_t StaticFeatureCache::evict(std::span<const VertexId> ids) {
  std::int64_t evicted = 0;
  {
    std::unique_lock rows(rows_mutex_);
    for (VertexId v : ids) {
      if (v < 0 || static_cast<std::size_t>(v) >= slot_of_.size()) continue;
      const std::int64_t slot = slot_of_[static_cast<std::size_t>(v)];
      if (slot < 0) continue;
      slot_of_[static_cast<std::size_t>(v)] = -1;
      pinned_[static_cast<std::size_t>(slot)] = -1;
      zero_slot_unlocked(slot);
      ++evicted;
    }
  }
  if (evicted > 0) {
    std::lock_guard totals(totals_mutex_);
    evictions_ += evicted;
  }
  return evicted;
}

std::int64_t StaticFeatureCache::rerank(std::span<const VertexId> hot) {
  std::int64_t admitted = 0;
  std::int64_t dropped = 0;
  {
    std::unique_lock rows(rows_mutex_);
    // Desired membership: the first capacity() distinct in-range ids.
    std::vector<char> want(slot_of_.size(), 0);
    std::vector<VertexId> to_admit;
    std::int64_t taken = 0;
    for (const VertexId v : hot) {
      if (taken >= capacity_) break;
      if (v < 0 || static_cast<std::size_t>(v) >= slot_of_.size()) continue;
      char& flag = want[static_cast<std::size_t>(v)];
      if (flag != 0) continue;
      flag = 1;
      ++taken;
      if (slot_of_[static_cast<std::size_t>(v)] < 0) to_admit.push_back(v);
    }
    // Drop pinned rows that fell out of the hot set; collect every free
    // slot — including the ones evict() freed earlier and never
    // re-admitted (the capacity leak this operation exists to fix).
    std::vector<std::int64_t> free_slots;
    for (std::int64_t slot = 0; slot < capacity_; ++slot) {
      const VertexId v = pinned_[static_cast<std::size_t>(slot)];
      if (v < 0) {
        free_slots.push_back(slot);
        continue;
      }
      if (want[static_cast<std::size_t>(v)] != 0) continue;  // keeps its slot, no copy
      slot_of_[static_cast<std::size_t>(v)] = -1;
      pinned_[static_cast<std::size_t>(slot)] = -1;
      zero_slot_unlocked(slot);
      free_slots.push_back(slot);
      ++dropped;
    }
    for (const VertexId v : to_admit) {
      if (free_slots.empty()) break;
      const std::int64_t slot = free_slots.back();
      free_slots.pop_back();
      slot_of_[static_cast<std::size_t>(v)] = slot;
      pinned_[static_cast<std::size_t>(slot)] = v;
      fill_slot_unlocked(slot, v);
      slot_hits_[static_cast<std::size_t>(slot)].store(0, std::memory_order_relaxed);
      ++admitted;
    }
    // Decay: halve the access counters so the next rerank is dominated
    // by the traffic observed AFTER this one (exponential forgetting).
    for (std::size_t v = 0; v < slot_of_.size(); ++v) {
      const std::uint64_t count = access_[v].load(std::memory_order_relaxed);
      if (count != 0) access_[v].store(count / 2, std::memory_order_relaxed);
    }
  }
  {
    std::lock_guard totals(totals_mutex_);
    ++reranks_;
    readmitted_rows_ += admitted;
    rerank_evicted_rows_ += dropped;
  }
  return admitted;
}

void StaticFeatureCache::account(const LoadStats& stats) {
  std::lock_guard totals(totals_mutex_);
  totals_.hits += stats.hits;
  totals_.misses += stats.misses;
  totals_.device_bytes += stats.device_bytes;
  totals_.host_bytes += stats.host_bytes;
  since_invalidate_.hits += stats.hits;
  since_invalidate_.misses += stats.misses;
  since_invalidate_.device_bytes += stats.device_bytes;
  since_invalidate_.host_bytes += stats.host_bytes;
}

}  // namespace hyscale
