#include "runtime/feature_cache.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/reorder.hpp"

namespace hyscale {

StaticFeatureCache::StaticFeatureCache(const CsrGraph& graph, const Tensor& features,
                                       std::int64_t capacity_rows)
    : features_(features) {
  if (features.rows() != graph.num_vertices())
    throw std::invalid_argument("StaticFeatureCache: features/graph size mismatch");
  if (capacity_rows < 0)
    throw std::invalid_argument("StaticFeatureCache: negative capacity");
  capacity_ = std::min<std::int64_t>(capacity_rows, graph.num_vertices());
  cached_.assign(static_cast<std::size_t>(graph.num_vertices()), false);
  slot_of_.assign(static_cast<std::size_t>(graph.num_vertices()), -1);
  // Degree-ordered: PaGraph's "computation-aware" policy caches the
  // vertices most likely to appear in sampled neighborhoods.
  const std::vector<VertexId> order = degree_order(graph);
  device_rows_.resize(capacity_, features.cols());
  pinned_.reserve(static_cast<std::size_t>(capacity_));
  for (std::int64_t i = 0; i < capacity_; ++i) {
    const VertexId v = order[static_cast<std::size_t>(i)];
    cached_[static_cast<std::size_t>(v)] = true;
    slot_of_[static_cast<std::size_t>(v)] = i;
    pinned_.push_back(v);
    const auto src = features.row(v);
    std::copy(src.begin(), src.end(), device_rows_.row(i).begin());
  }
}

StaticFeatureCache::LoadStats StaticFeatureCache::load(const MiniBatch& batch, Tensor& out) {
  const auto& nodes = batch.input_nodes();
  out.resize(static_cast<std::int64_t>(nodes.size()), features_.cols());

  LoadStats stats;
  const double row_bytes = static_cast<double>(features_.cols()) * 4.0;
  {
    std::shared_lock rows(rows_mutex_);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const VertexId v = nodes[i];
      const auto dst = out.row(static_cast<std::int64_t>(i));
      const std::int64_t slot = slot_of_[static_cast<std::size_t>(v)];
      if (slot >= 0) {
        const auto src = device_rows_.row(slot);
        std::copy(src.begin(), src.end(), dst.begin());
        ++stats.hits;
        stats.device_bytes += row_bytes;
      } else {
        const auto src = features_.row(v);
        std::copy(src.begin(), src.end(), dst.begin());
        ++stats.misses;
        stats.host_bytes += row_bytes;
      }
    }
  }
  account(stats);
  return stats;
}

std::int64_t StaticFeatureCache::copy_cached_rows(std::span<const VertexId> nodes,
                                                  std::vector<char>& hit, Tensor& out) const {
  std::int64_t hits = 0;
  std::shared_lock rows(rows_mutex_);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const VertexId v = nodes[i];
    if (v < 0 || static_cast<std::size_t>(v) >= slot_of_.size()) continue;
    const std::int64_t slot = slot_of_[static_cast<std::size_t>(v)];
    if (slot < 0) continue;
    const auto src = device_rows_.row(slot);
    std::copy(src.begin(), src.end(), out.row(static_cast<std::int64_t>(i)).begin());
    hit[i] = 1;
    ++hits;
  }
  return hits;
}

bool StaticFeatureCache::copy_if_cached(VertexId v, std::span<float> dst) const {
  if (v < 0 || static_cast<std::size_t>(v) >= slot_of_.size()) return false;
  std::shared_lock rows(rows_mutex_);
  const std::int64_t slot = slot_of_[static_cast<std::size_t>(v)];
  if (slot < 0) return false;
  const auto src = device_rows_.row(slot);
  std::copy(src.begin(), src.end(), dst.begin());
  return true;
}

std::int64_t StaticFeatureCache::invalidate(std::span<const VertexId> ids) {
  std::int64_t refreshed = 0;
  {
    std::unique_lock rows(rows_mutex_);
    for (VertexId v : ids) {
      if (v < 0 || static_cast<std::size_t>(v) >= slot_of_.size()) continue;
      const std::int64_t slot = slot_of_[static_cast<std::size_t>(v)];
      if (slot < 0) continue;
      const auto src = features_.row(v);
      std::copy(src.begin(), src.end(), device_rows_.row(slot).begin());
      ++refreshed;
    }
  }
  // A call that refreshed nothing (no pinned rows among `ids`) leaves
  // the freshness window intact — resetting it on no-ops would blank
  // the since_invalidate() signal under update streams that mostly
  // touch unpinned vertices.
  if (refreshed > 0) {
    std::lock_guard totals(totals_mutex_);
    ++invalidations_;
    invalidated_rows_ += refreshed;
    since_invalidate_ = {};
  }
  return refreshed;
}

std::int64_t StaticFeatureCache::evict(std::span<const VertexId> ids) {
  std::int64_t evicted = 0;
  {
    std::unique_lock rows(rows_mutex_);
    for (VertexId v : ids) {
      if (v < 0 || static_cast<std::size_t>(v) >= slot_of_.size()) continue;
      const std::int64_t slot = slot_of_[static_cast<std::size_t>(v)];
      if (slot < 0) continue;
      cached_[static_cast<std::size_t>(v)] = false;
      slot_of_[static_cast<std::size_t>(v)] = -1;
      pinned_[static_cast<std::size_t>(slot)] = -1;
      const auto dst = device_rows_.row(slot);
      std::fill(dst.begin(), dst.end(), 0.0f);
      ++evicted;
    }
  }
  if (evicted > 0) {
    std::lock_guard totals(totals_mutex_);
    evictions_ += evicted;
  }
  return evicted;
}

void StaticFeatureCache::account(const LoadStats& stats) {
  std::lock_guard totals(totals_mutex_);
  totals_.hits += stats.hits;
  totals_.misses += stats.misses;
  totals_.device_bytes += stats.device_bytes;
  totals_.host_bytes += stats.host_bytes;
  since_invalidate_.hits += stats.hits;
  since_invalidate_.misses += stats.misses;
  since_invalidate_.device_bytes += stats.device_bytes;
  since_invalidate_.host_bytes += stats.host_bytes;
}

}  // namespace hyscale
