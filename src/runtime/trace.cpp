#include "runtime/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/strutil.hpp"

namespace hyscale {

namespace {

struct StageRow {
  const char* name;
  int tid;
};

void append_event(std::ostringstream& out, bool& first, const char* name, int tid,
                  double start_us, double duration_us, long iteration) {
  if (!first) out << ",\n";
  first = false;
  out << R"(  {"name": ")" << name << R"(", "cat": "pipeline", "ph": "X", "pid": 1, "tid": )"
      << tid << R"(, "ts": )" << format_double(start_us, 3) << R"(, "dur": )"
      << format_double(duration_us, 3) << R"(, "args": {"iteration": )" << iteration << "}}";
}

}  // namespace

std::string to_chrome_trace(const EpochReport& report, PipelineMode mode) {
  std::ostringstream out;
  out << "{\n\"traceEvents\": [\n";
  bool first = true;

  // Steady-state pipelined layout: each stage row advances by the
  // iteration time; a stage's start is the max of (its previous finish,
  // the upstream stage's finish for this batch).
  double sample_free = 0.0, load_free = 0.0, transfer_free = 0.0, train_free = 0.0;
  for (const IterationRecord& record : report.trajectory) {
    const StageTimes& t = record.times;
    const double sample_start = sample_free;
    const double sample_end = sample_start + t.sampling();
    double load_start = 0.0, load_end = 0.0, transfer_start = 0.0, transfer_end = 0.0;
    if (mode == PipelineMode::kTwoStagePrefetch) {
      load_start = std::max(load_free, sample_end);
      load_end = load_start + t.load;
      transfer_start = std::max(transfer_free, load_end);
      transfer_end = transfer_start + t.transfer;
    } else {
      // Fused (or sequential) prefetch: loading and transfer back to back.
      load_start = std::max(load_free, sample_end);
      load_end = load_start + t.load;
      transfer_start = load_end;
      transfer_end = transfer_start + t.transfer;
    }
    const double train_start = std::max(train_free, transfer_end);
    const double train_end = train_start + t.propagation();

    const double us = 1e6;
    append_event(out, first, "Sampling", 0, sample_start * us, (sample_end - sample_start) * us,
                 record.iteration);
    append_event(out, first, "FeatureLoading", 1, load_start * us, (load_end - load_start) * us,
                 record.iteration);
    append_event(out, first, "DataTransfer", 2, transfer_start * us,
                 (transfer_end - transfer_start) * us, record.iteration);
    append_event(out, first, "GNNPropagation+Sync", 3, train_start * us,
                 (train_end - train_start) * us, record.iteration);

    sample_free = sample_end;
    load_free = load_end;
    transfer_free = transfer_end;
    train_free = train_end;
    if (mode == PipelineMode::kSequential) {
      // No overlap at all: every stage of the next iteration waits.
      sample_free = load_free = transfer_free = train_free = train_end;
    }
  }
  out << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
  return out.str();
}

void write_chrome_trace(const EpochReport& report, PipelineMode mode, const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) throw std::runtime_error("write_chrome_trace: cannot open " + path);
  file << to_chrome_trace(report, mode);
  if (!file) throw std::runtime_error("write_chrome_trace: write failed for " + path);
}

}  // namespace hyscale
