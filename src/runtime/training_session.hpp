// TrainingSession: the multi-epoch driver a user runs — epochs, held-out
// evaluation, early stopping on plateau, best-checkpoint tracking.
//
// Wraps HybridTrainer with the bookkeeping every real training campaign
// needs but the paper's evaluation (throughput-focused) does not discuss.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "runtime/csv_report.hpp"
#include "runtime/hybrid_trainer.hpp"

namespace hyscale {

struct SessionConfig {
  int max_epochs = 20;
  /// Stop after this many epochs without improving train accuracy by at
  /// least `min_delta`; 0 disables early stopping.
  int patience = 5;
  double min_delta = 1e-3;
  /// When non-empty, best-model parameters are checkpointed here.
  std::string checkpoint_path;
  /// When non-empty, per-epoch CSV metrics are written here at the end.
  std::string csv_path;
  /// Seeds evaluated per accuracy probe.
  std::int64_t eval_seeds = 512;
};

struct SessionResult {
  std::vector<EpochReport> reports;
  double best_accuracy = 0.0;
  int best_epoch = -1;
  bool early_stopped = false;
  int epochs_run = 0;
};

class TrainingSession {
 public:
  TrainingSession(HybridTrainer& trainer, SessionConfig config);

  /// Runs until max_epochs or early stop; returns the full record.
  SessionResult run();

 private:
  HybridTrainer& trainer_;
  SessionConfig config_;
};

}  // namespace hyscale
