// CSV export of epoch reports — the artifact format downstream analysis
// scripts (pandas/gnuplot) consume from long training runs.
#pragma once

#include <string>
#include <vector>

#include "runtime/hybrid_trainer.hpp"

namespace hyscale {

/// Header line matching csv_row()'s columns.
std::string csv_header();

/// One epoch as a CSV row: epoch index, simulated time, iterations,
/// MTEPS, loss, accuracy, mean stage times, final workload split.
std::string csv_row(int epoch, const EpochReport& report);

/// Serialises a whole run (header + one row per report).
std::string to_csv(const std::vector<EpochReport>& reports);

/// Writes to a file; throws std::runtime_error on I/O failure.
void write_csv(const std::vector<EpochReport>& reports, const std::string& path);

}  // namespace hyscale
