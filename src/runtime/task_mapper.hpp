// Design-time (coarse-grained) task mapping.
//
// "We first utilize the predicted result from our performance model to
// initialize the GNN training task mapping during compile time" (§IV-A).
// The mapper sweeps candidate CPU-trainer workload shares and thread
// allocations, evaluates each with the performance model, and returns the
// assignment with the lowest predicted iteration time.  DRM then
// fine-tunes it at runtime.
#pragma once

#include "runtime/perf_model.hpp"
#include "runtime/workload.hpp"

namespace hyscale {

struct TaskMapperOptions {
  std::int64_t per_trainer_batch = 1024;  ///< the paper's default mini-batch size
  bool hybrid = true;                      ///< allow a CPU trainer at all
  PipelineMode mode = PipelineMode::kTwoStagePrefetch;
  /// Candidate CPU shares of one extra trainer's worth of work,
  /// in 1/16ths of per_trainer_batch (0 .. 16).
  int max_cpu_share_16ths = 16;
};

/// Returns the best initial WorkloadAssignment for the platform described
/// by `model`'s PerformanceModel.
WorkloadAssignment initial_task_mapping(const PerformanceModel& model,
                                        const TaskMapperOptions& options = {});

}  // namespace hyscale
