#include "runtime/task_mapper.hpp"

#include <array>
#include <limits>

#include "common/log.hpp"

namespace hyscale {

WorkloadAssignment initial_task_mapping(const PerformanceModel& model,
                                        const TaskMapperOptions& options) {
  const int num_accels = model.platform().num_accelerators();

  WorkloadAssignment best;
  Seconds best_time = std::numeric_limits<double>::infinity();

  // Thread-allocation presets; DRM refines at runtime, the mapper only
  // needs a reasonable starting split of the 128 host threads.
  const int total_threads = model.platform().cpu_threads;
  const std::array<ThreadAllocation, 3> thread_presets = {{
      {total_threads, total_threads / 4, total_threads / 4, total_threads / 2},
      {total_threads, total_threads / 8, total_threads / 2, total_threads / 8 * 3},
      {total_threads, total_threads / 2, total_threads / 4, total_threads / 4},
  }};

  // The hybrid system adds a CPU trainer carrying up to one extra
  // trainer's worth of seeds on top of `per_trainer_batch` per
  // accelerator; accelerator-only mapping is cpu_share = 0.
  const int max_share = options.hybrid ? options.max_cpu_share_16ths : 0;
  for (int share16 = 0; share16 <= max_share; ++share16) {
    for (const auto& threads : thread_presets) {
      WorkloadAssignment candidate;
      candidate.num_accelerators = num_accels;
      candidate.accel_batch = num_accels > 0 ? options.per_trainer_batch : 0;
      candidate.cpu_batch = options.per_trainer_batch * share16 / 16;
      if (num_accels == 0 && candidate.cpu_batch == 0)
        candidate.cpu_batch = options.per_trainer_batch;
      candidate.threads = threads;
      candidate.accel_sample_fraction = 0.0;

      const Seconds time = model.predict_iteration(candidate, options.mode);
      // Normalise by work done so larger CPU shares are rewarded only
      // when they raise throughput.
      const double per_seed = time / static_cast<double>(candidate.total_batch());
      const double best_per_seed =
          best_time / static_cast<double>(best.total_batch() > 0 ? best.total_batch() : 1);
      if (best_time == std::numeric_limits<double>::infinity() || per_seed < best_per_seed) {
        best = candidate;
        best_time = time;
      }
    }
  }
  log_message(LogLevel::kInfo, "task_mapper", "initial mapping: ", best.to_string());
  return best;
}

}  // namespace hyscale
