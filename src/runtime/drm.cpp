#include "runtime/drm.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "common/log.hpp"
#include "common/strutil.hpp"

namespace hyscale {

std::string DrmAction::to_string() const {
  switch (kind) {
    case Kind::kNone:
      return "drm{none}";
    case Kind::kBalanceWork:
      return std::string("drm{balance_work, bottleneck=") + stage_name(bottleneck) +
             ", moved=" + std::to_string(batch_moved) + " seeds CPU->accel}";
    case Kind::kBalanceThread:
      return std::string("drm{balance_thread, ") + stage_name(thread_from) + "->" +
             stage_name(thread_to) + " x" + std::to_string(threads_moved) + "}";
    case Kind::kBalanceSampling:
      return "drm{balance_sampling, delta=" + format_double(sample_fraction_delta, 3) + "}";
  }
  return "drm{?}";
}

DrmEngine::DrmEngine(DrmConfig config) : config_(config) {
  if (config_.work_gain <= 0.0 || config_.work_gain > 1.0)
    throw std::invalid_argument("DrmEngine: work_gain must be in (0,1]");
  if (config_.thread_step <= 0) throw std::invalid_argument("DrmEngine: thread_step must be > 0");
}

namespace {

// The five quantities Algorithm 1 sorts (line 2): TSC, TSA, TLoad, TTC,
// and the bundled T_Accel = max(TTran, TTA).
struct Entry {
  Stage stage;
  Seconds time;
};

Stage cpu_task_for(Stage stage) { return stage; }  // TSC / TLoad / TTC are CPU tasks

}  // namespace

DrmAction DrmEngine::balance_thread(Stage from, Stage to, WorkloadAssignment& workload) {
  DrmAction action;
  action.kind = DrmAction::Kind::kBalanceThread;
  action.thread_from = from;
  action.thread_to = to;

  auto slot = [&](Stage stage) -> int* {
    switch (stage) {
      case Stage::kSampleCpu: return &workload.threads.sampler;
      case Stage::kLoad: return &workload.threads.loader;
      case Stage::kTrainCpu: return &workload.threads.trainer;
      default: return nullptr;
    }
  };
  int* src = slot(from);
  int* dst = slot(to);
  if (src == nullptr || dst == nullptr || src == dst) {
    action.kind = DrmAction::Kind::kNone;
    return action;
  }
  // Keep at least one thread on every CPU task so no stage deadlocks.
  const int movable = std::max(0, *src - 1);
  const int moved = std::min(config_.thread_step, movable);
  *src -= moved;
  *dst += moved;
  action.threads_moved = moved;
  if (moved == 0) action.kind = DrmAction::Kind::kNone;
  return action;
}

DrmAction DrmEngine::balance_trainer_work(const StageTimes& times, WorkloadAssignment& workload) {
  DrmAction action;
  action.kind = DrmAction::Kind::kBalanceWork;

  // Observed processing rates (seeds/s).  If a side currently has no
  // workload, give it an optimistic rate equal to the other side's so a
  // first chunk gets assigned and real rates can be observed next round.
  const double accel_total =
      static_cast<double>(workload.accel_batch) * workload.num_accelerators;
  const double cpu_rate = workload.cpu_batch > 0 && times.train_cpu > 0.0
                              ? static_cast<double>(workload.cpu_batch) / times.train_cpu
                              : 0.0;
  const Seconds accel_time = times.accel_bundle();
  const double accel_rate =
      accel_total > 0.0 && accel_time > 0.0 ? accel_total / accel_time : 0.0;
  if (cpu_rate == 0.0 && accel_rate == 0.0) {
    action.kind = DrmAction::Kind::kNone;
    return action;
  }

  const std::int64_t total = workload.total_batch();
  const double effective_cpu_rate = cpu_rate > 0.0 ? cpu_rate : accel_rate * 0.1;
  const double effective_accel_rate = accel_rate > 0.0 ? accel_rate : effective_cpu_rate;
  const double ideal_cpu = static_cast<double>(total) * effective_cpu_rate /
                           (effective_cpu_rate + effective_accel_rate);

  double target = static_cast<double>(workload.cpu_batch) +
                  config_.work_gain * (ideal_cpu - static_cast<double>(workload.cpu_batch));
  // Quantise to granularity and clamp.  Below one granule the CPU
  // trainer is pure overhead — release it entirely (its threads then
  // flow to the sampler/loader via balance_thread).
  const double g = static_cast<double>(config_.batch_granularity);
  target = target < g ? 0.0 : g * std::nearbyint(target / g);
  const auto new_cpu =
      std::clamp<std::int64_t>(static_cast<std::int64_t>(target), 0, total);

  action.batch_moved = workload.cpu_batch - new_cpu;  // positive: CPU -> accel
  workload.cpu_batch = new_cpu;
  if (workload.num_accelerators > 0) {
    workload.accel_batch = (total - new_cpu) / workload.num_accelerators;
    // Remainder seeds stay on the CPU so the total is preserved exactly.
    workload.cpu_batch = total - workload.accel_batch * workload.num_accelerators;
  }
  if (action.batch_moved == 0) action.kind = DrmAction::Kind::kNone;
  return action;
}

DrmAction DrmEngine::balance_sampling_work(const StageTimes& /*times*/,
                                           WorkloadAssignment& workload, bool toward_accel) {
  DrmAction action;
  action.kind = DrmAction::Kind::kBalanceSampling;
  const double delta = toward_accel ? config_.sample_fraction_step : -config_.sample_fraction_step;
  const double before = workload.accel_sample_fraction;
  workload.accel_sample_fraction = std::clamp(before + delta, 0.0, 1.0);
  action.sample_fraction_delta = workload.accel_sample_fraction - before;
  if (action.sample_fraction_delta == 0.0) action.kind = DrmAction::Kind::kNone;
  return action;
}

DrmAction DrmEngine::step(const StageTimes& times, WorkloadAssignment& workload) {
  // Algorithm 1, lines 1-8.
  const Seconds t_accel = times.accel_bundle();
  std::array<Entry, 5> all = {{{Stage::kSampleCpu, times.sample_cpu},
                               {Stage::kSampleAccel, times.sample_accel},
                               {Stage::kLoad, times.load},
                               {Stage::kTrainCpu, times.train_cpu},
                               {Stage::kTrainAccel, t_accel}}};
  // TSA only participates when accelerator sampling is possible at all.
  auto begin = all.begin();
  auto end = all.end();
  std::vector<Entry> active(begin, end);
  if (!config_.accel_sampling_available) {
    active.erase(std::remove_if(active.begin(), active.end(),
                                [](const Entry& e) { return e.stage == Stage::kSampleAccel; }),
                 active.end());
  }
  std::sort(active.begin(), active.end(),
            [](const Entry& a, const Entry& b) { return a.time > b.time; });
  const Stage bottleneck = active.front().stage;
  const Stage fastest = active.back().stage;
  const Stage second = active[active.size() - 2].stage;

  std::array<Entry, 3> cpu_tasks = {{{Stage::kSampleCpu, times.sample_cpu},
                                     {Stage::kLoad, times.load},
                                     {Stage::kTrainCpu, times.train_cpu}}};
  std::sort(cpu_tasks.begin(), cpu_tasks.end(),
            [](const Entry& a, const Entry& b) { return a.time > b.time; });
  const Stage fastest_cpu_task = cpu_tasks.back().stage;

  DrmAction action;
  switch (bottleneck) {
    case Stage::kSampleAccel:
      // Line 11-12: too much sampling on the accelerator; shift to CPU.
      action = balance_sampling_work(times, workload, /*toward_accel=*/false);
      break;
    case Stage::kTrainAccel:
      // Line 13-14: accelerator (transfer or training) is the bottleneck;
      // move training work to the CPU.
      action = balance_trainer_work(times, workload);
      break;
    case Stage::kLoad:
      // Line 15-16: feed the loader more threads from the fastest CPU task.
      action = balance_thread(cpu_task_for(fastest_cpu_task), Stage::kLoad, workload);
      break;
    case Stage::kSampleCpu:
      // Lines 17-24.
      if (config_.accel_sampling_available &&
          (fastest == Stage::kSampleAccel ||
           (fastest == Stage::kTrainAccel && second == Stage::kSampleAccel))) {
        action = balance_sampling_work(times, workload, /*toward_accel=*/true);
      } else {
        action = balance_thread(cpu_task_for(fastest_cpu_task), Stage::kSampleCpu, workload);
      }
      break;
    case Stage::kTrainCpu:
      // Lines 25-32.
      if (fastest == Stage::kTrainAccel ||
          (fastest == Stage::kSampleAccel && second == Stage::kTrainAccel)) {
        action = balance_trainer_work(times, workload);
      } else {
        action = balance_thread(cpu_task_for(fastest_cpu_task), Stage::kTrainCpu, workload);
      }
      break;
    default:
      break;
  }
  action.bottleneck = bottleneck;
  action.fastest = fastest;
  log_message(LogLevel::kDebug, "drm", action.to_string(), " | ", times.to_string());
  return action;
}

}  // namespace hyscale
