// HyScale-GNN public API.
//
// Umbrella header plus a small facade for the common workflow:
//
//   #include "core/hyscale.hpp"
//
//   auto dataset = hyscale::materialize_dataset("ogbn-products");
//   hyscale::HyScale system(dataset, hyscale::cpu_fpga_platform(4));
//   auto reports = system.train(/*epochs=*/3);
//
// Lower-level pieces (samplers, cost models, DRM, baselines) are all
// reachable through the headers re-exported here.
#pragma once

#include "baselines/distdgl.hpp"
#include "baselines/p3.hpp"
#include "baselines/pagraph.hpp"
#include "baselines/pyg.hpp"
#include "baselines/reference_trainer.hpp"
#include "device/cost_model.hpp"
#include "device/fpga_model.hpp"
#include "device/link.hpp"
#include "device/sampler_model.hpp"
#include "device/spec.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "graph/generator.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"
#include "graph/reorder.hpp"
#include "nn/checkpoint.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "obs/flightrec.hpp"
#include "obs/telemetry.hpp"
#include "runtime/drm.hpp"
#include "runtime/feature_cache.hpp"
#include "runtime/feature_loader.hpp"
#include "runtime/hybrid_trainer.hpp"
#include "runtime/perf_model.hpp"
#include "runtime/protocol.hpp"
#include "runtime/stage_times.hpp"
#include "runtime/sync.hpp"
#include "runtime/task_mapper.hpp"
#include "runtime/trace.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "sampling/saint_sampler.hpp"
#include "sampling/sorted_edges.hpp"
#include "serving/serving.hpp"
#include "shard/shard.hpp"
#include "stream/stream.hpp"
#include "tensor/quantize.hpp"

namespace hyscale {

/// Library version.
inline constexpr const char* kVersion = "1.0.0";

/// A live streaming deployment: the evolving graph, an inference server
/// bound to its latest published version, and the background lifecycle
/// threads — compactor (annihilate-then-fold), SLO publisher (staleness
/// budget, on by default), and TTL expiry sweeper (opt-in).  Members
/// are declared in dependency order so teardown is safe: the sweeper
/// stops first (it feeds retirements into the graph), then the
/// publisher and compactor, then the server drains (detaching its
/// cache), then the graph goes away.  Quiesce your ingest threads
/// before dropping the session.
struct StreamingSession {
  std::unique_ptr<StreamingGraph> graph;
  std::unique_ptr<InferenceServer> server;
  std::unique_ptr<Compactor> compactor;
  std::unique_ptr<Publisher> publisher;  ///< null when the staleness budget is disabled
  std::unique_ptr<ExpirySweeper> sweeper;  ///< null unless the expiry policy is enabled

  StreamingGraph& stream() { return *graph; }
  InferenceResult infer(std::vector<VertexId> seeds) { return server->infer(std::move(seeds)); }
};

/// A live SHARDED streaming deployment: N partition-routed shards
/// behind one facade, an inference server bound to the latest adopted
/// cross-shard cut, per-shard compactors and SLO publishers (reused
/// unchanged from the flat stack), and the CutAdopter that folds
/// per-shard publishes into consistent cuts.  Teardown runs in reverse
/// declaration order: the adopter stops first (cuts freeze), then the
/// publishers and compactors, then the server drains (detaching its
/// per-shard caches), then the facade and its shards go away.  Quiesce
/// your ingest threads before dropping the session.
struct ShardedStreamingSession {
  std::unique_ptr<ShardedStreamingGraph> graph;
  std::unique_ptr<InferenceServer> server;
  std::vector<std::unique_ptr<Compactor>> compactors;  ///< one per shard
  std::vector<std::unique_ptr<Publisher>> publishers;  ///< one per shard; empty when disabled
  std::unique_ptr<CutAdopter> adopter;

  ShardedStreamingGraph& shards() { return *graph; }
  InferenceResult infer(std::vector<VertexId> seeds) { return server->infer(std::move(seeds)); }
};

/// Facade: dataset + platform + config -> trained model, reports, and an
/// online inference server over the trained weights.
class HyScale {
 public:
  HyScale(const Dataset& dataset, PlatformSpec platform, HybridTrainerConfig config = {})
      : dataset_(&dataset), trainer_(dataset, std::move(platform), std::move(config)) {}

  std::vector<EpochReport> train(int epochs) { return trainer_.train(epochs); }
  EpochReport train_epoch() { return trainer_.train_epoch(); }

  /// Snapshots the current model weights and starts serving them.  Train
  /// further and call serve() again for a fresher snapshot; live servers
  /// keep the weights they were started with.
  std::unique_ptr<InferenceServer> serve(ServingConfig config = {}) {
    const ModelSnapshot snapshot(trainer_.model());
    return std::make_unique<InferenceServer>(*dataset_, snapshot, std::move(config));
  }

  /// Snapshots the current weights and starts serving over an EVOLVING
  /// copy of the dataset's graph: ingest edge/vertex insertions AND
  /// deletions (add_edge/remove_edge, add_vertex/remove_vertex) plus
  /// feature updates through session.stream(), and queries see them
  /// live.  Background lifecycle threads keep the deployment healthy
  /// under sustained churn: the SLO Publisher (on by default) makes
  /// every accepted op visible within `publisher.staleness_budget`
  /// without any caller-paced publish() calls; the Compactor
  /// annihilates cancelled op pairs in place and folds deltas —
  /// dropping tombstoned edges and recycling deleted streamed-in ids —
  /// into fresh CSRs only when the overlay really needs it; and, when
  /// `expiry.enabled()`, the ExpirySweeper retires streamed-in
  /// entities idle past their TTL, paced against the compaction
  /// trigger.
  StreamingSession stream(ServingConfig serving = {}, StreamingConfig streaming = {},
                          CompactionPolicy compaction = {}, PublisherPolicy publisher = {},
                          ExpiryPolicy expiry = {}) {
    const ModelSnapshot snapshot(trainer_.model());
    StreamingSession session;
    session.graph = std::make_unique<StreamingGraph>(*dataset_, streaming);
    session.server =
        std::make_unique<InferenceServer>(*session.graph, snapshot, std::move(serving));
    session.compactor = std::make_unique<Compactor>(*session.graph, compaction);
    if (publisher.staleness_budget > 0.0)
      session.publisher = std::make_unique<Publisher>(*session.graph, publisher);
    if (expiry.enabled()) {
      if (expiry.pending_op_budget == ExpiryPolicy::kDeriveFromCompaction)
        expiry.pending_op_budget = compaction.max_overlay_edges / 2;
      session.sweeper = std::make_unique<ExpirySweeper>(*session.graph, expiry);
    }
    return session;
  }

  /// Sharded variant of stream(): the evolving graph is split into
  /// `sharded.num_shards` partition-routed StreamingGraph shards (hash
  /// or BFS partitioner), each with its own Compactor and SLO
  /// Publisher, while a CutAdopter folds the shards' independent
  /// publishes into consistent cross-shard cuts for the server.  TTL
  /// expiry is driven by the caller in sharded mode (see
  /// ShardedStreamingGraph::sweep_expired) — there is no per-session
  /// sweeper, because retirement must be facade-wide to keep the
  /// shards' vertex spaces in lockstep.
  ShardedStreamingSession stream_sharded(ShardedConfig sharded = {},
                                         ServingConfig serving = {},
                                         CompactionPolicy compaction = {},
                                         PublisherPolicy publisher = {},
                                         CutAdopterPolicy adopter = {}) {
    const ModelSnapshot snapshot(trainer_.model());
    ShardedStreamingSession session;
    session.graph = std::make_unique<ShardedStreamingGraph>(*dataset_, std::move(sharded));
    session.server =
        std::make_unique<InferenceServer>(*session.graph, snapshot, std::move(serving));
    for (int s = 0; s < session.graph->num_shards(); ++s) {
      session.compactors.push_back(
          std::make_unique<Compactor>(session.graph->shard(s), compaction));
      if (publisher.staleness_budget > 0.0)
        session.publishers.push_back(
            std::make_unique<Publisher>(session.graph->shard(s), publisher));
    }
    session.adopter = std::make_unique<CutAdopter>(*session.graph, adopter);
    return session;
  }

  HybridTrainer& runtime() { return trainer_; }
  GnnModel& model() { return trainer_.model(); }

 private:
  const Dataset* dataset_;
  HybridTrainer trainer_;
};

}  // namespace hyscale
