// HyScale-GNN public API.
//
// Umbrella header plus a small facade for the common workflow:
//
//   #include "core/hyscale.hpp"
//
//   auto dataset = hyscale::materialize_dataset("ogbn-products");
//   hyscale::HyScale system(dataset, hyscale::cpu_fpga_platform(4));
//   auto reports = system.train(/*epochs=*/3);
//
// Lower-level pieces (samplers, cost models, DRM, baselines) are all
// reachable through the headers re-exported here.
#pragma once

#include "baselines/distdgl.hpp"
#include "baselines/p3.hpp"
#include "baselines/pagraph.hpp"
#include "baselines/pyg.hpp"
#include "baselines/reference_trainer.hpp"
#include "device/cost_model.hpp"
#include "device/fpga_model.hpp"
#include "device/link.hpp"
#include "device/sampler_model.hpp"
#include "device/spec.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "graph/generator.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"
#include "graph/reorder.hpp"
#include "nn/checkpoint.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "obs/flightrec.hpp"
#include "obs/telemetry.hpp"
#include "runtime/drm.hpp"
#include "runtime/feature_cache.hpp"
#include "runtime/feature_loader.hpp"
#include "runtime/hybrid_trainer.hpp"
#include "runtime/perf_model.hpp"
#include "runtime/protocol.hpp"
#include "runtime/stage_times.hpp"
#include "runtime/sync.hpp"
#include "runtime/task_mapper.hpp"
#include "runtime/trace.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "sampling/saint_sampler.hpp"
#include "sampling/sorted_edges.hpp"
#include "serving/serving.hpp"
#include "shard/shard.hpp"
#include "stream/stream.hpp"
#include "tensor/quantize.hpp"

namespace hyscale {

/// Library version.
inline constexpr const char* kVersion = "1.0.0";

/// A live serving deployment, flat or sharded: the evolving graph, the
/// ServingBackend seam the server runs on, the inference server, and
/// the background lifecycle threads — per-shard compactors
/// (annihilate-then-fold; exactly one in flat mode), SLO publishers
/// (staleness budget, on by default), the CutAdopter folding per-shard
/// publishes into consistent cuts (sharded only), and ONE TTL expiry
/// sweeper paced through the backend (opt-in; facade-wide in sharded
/// mode, so retirement keeps every shard's vertex space in lockstep).
///
/// This one struct replaced the near-identical StreamingSession /
/// ShardedStreamingSession pair; those names remain as aliases.
/// Members are declared in dependency order so teardown is safe: the
/// sweeper stops first (it feeds retirements into the graph), then the
/// adopter (cuts freeze), the publishers and compactors, then the
/// server drains, then the backend detaches its caches, then the graph
/// goes away.  Quiesce your ingest threads before dropping the session.
struct ServingSession {
  std::unique_ptr<StreamingGraph> graph;           ///< flat mode; null when sharded
  std::unique_ptr<ShardedStreamingGraph> sharded;  ///< sharded mode; null when flat
  std::unique_ptr<ServingBackend> backend;
  std::unique_ptr<InferenceServer> server;
  std::vector<std::unique_ptr<Compactor>> compactors;  ///< one per shard (flat: one)
  std::vector<std::unique_ptr<Publisher>> publishers;  ///< one per shard; empty when disabled
  std::unique_ptr<CutAdopter> adopter;     ///< sharded mode only
  std::unique_ptr<ExpirySweeper> sweeper;  ///< null unless the expiry policy is enabled

  StreamingGraph& stream() { return *graph; }
  ShardedStreamingGraph& shards() { return *sharded; }
  /// Flat mode's single lifecycle threads (null when absent).
  Compactor* compactor() { return compactors.empty() ? nullptr : compactors.front().get(); }
  Publisher* publisher() { return publishers.empty() ? nullptr : publishers.front().get(); }
  InferenceResult infer(std::vector<VertexId> seeds) { return server->infer(std::move(seeds)); }
};

/// Thin typed aliases kept for API compatibility with the pre-seam
/// facades.
using StreamingSession = ServingSession;
using ShardedStreamingSession = ServingSession;

/// Facade: dataset + platform + config -> trained model, reports, and an
/// online inference server over the trained weights.
class HyScale {
 public:
  HyScale(const Dataset& dataset, PlatformSpec platform, HybridTrainerConfig config = {})
      : dataset_(&dataset), trainer_(dataset, std::move(platform), std::move(config)) {}

  std::vector<EpochReport> train(int epochs) { return trainer_.train(epochs); }
  EpochReport train_epoch() { return trainer_.train_epoch(); }

  /// Snapshots the current model weights and starts serving them.  Train
  /// further and call serve() again for a fresher snapshot; live servers
  /// keep the weights they were started with.
  std::unique_ptr<InferenceServer> serve(ServingConfig config = {}) {
    const ModelSnapshot snapshot(trainer_.model());
    return std::make_unique<InferenceServer>(*dataset_, snapshot, std::move(config));
  }

  /// Snapshots the current weights and starts serving over an EVOLVING
  /// copy of the dataset's graph: ingest edge/vertex insertions AND
  /// deletions (add_edge/remove_edge, add_vertex/remove_vertex) plus
  /// feature updates through session.stream(), and queries see them
  /// live.  Background lifecycle threads keep the deployment healthy
  /// under sustained churn: the SLO Publisher (on by default) makes
  /// every accepted op visible within `publisher.staleness_budget`
  /// without any caller-paced publish() calls; the Compactor
  /// annihilates cancelled op pairs in place and folds deltas —
  /// dropping tombstoned edges and recycling deleted streamed-in ids —
  /// into fresh CSRs only when the overlay really needs it; and, when
  /// `expiry.enabled()`, the ExpirySweeper retires streamed-in
  /// entities idle past their TTL, paced against the compaction
  /// trigger.
  StreamingSession stream(ServingConfig serving = {}, StreamingConfig streaming = {},
                          CompactionPolicy compaction = {}, PublisherPolicy publisher = {},
                          ExpiryPolicy expiry = {}) {
    const ModelSnapshot snapshot(trainer_.model());
    ServingSession session;
    session.graph = std::make_unique<StreamingGraph>(*dataset_, streaming);
    session.backend = make_streaming_backend(*session.graph, serving);
    session.server =
        std::make_unique<InferenceServer>(*session.backend, snapshot, std::move(serving));
    session.compactors.push_back(std::make_unique<Compactor>(*session.graph, compaction));
    if (publisher.staleness_budget > 0.0)
      session.publishers.push_back(std::make_unique<Publisher>(*session.graph, publisher));
    if (expiry.enabled()) {
      if (expiry.pending_op_budget == ExpiryPolicy::kDeriveFromCompaction)
        expiry.pending_op_budget = compaction.max_overlay_edges / 2;
      // Paced through the backend seam — same target as the sharded
      // variant, so TTL wiring is written once.
      session.sweeper = std::make_unique<ExpirySweeper>(*session.backend, expiry);
    }
    return session;
  }

  /// Sharded variant of stream(): the evolving graph is split into
  /// `sharded.num_shards` partition-routed StreamingGraph shards (hash
  /// or BFS partitioner), each with its own Compactor and SLO
  /// Publisher, while a CutAdopter folds the shards' independent
  /// publishes into consistent cross-shard cuts for the server.  When
  /// `expiry.enabled()`, ONE ExpirySweeper paces TTL retirement through
  /// the backend's facade-wide sweep — broadcast retirement keeps the
  /// shards' vertex spaces in lockstep (the reason per-shard sweepers
  /// would be wrong, and why sharded TTL used to be caller-paced).
  ShardedStreamingSession stream_sharded(ShardedConfig sharded = {},
                                         ServingConfig serving = {},
                                         CompactionPolicy compaction = {},
                                         PublisherPolicy publisher = {},
                                         CutAdopterPolicy adopter = {},
                                         ExpiryPolicy expiry = {}) {
    const ModelSnapshot snapshot(trainer_.model());
    ServingSession session;
    session.sharded = std::make_unique<ShardedStreamingGraph>(*dataset_, std::move(sharded));
    session.backend = make_sharded_backend(*session.sharded, serving);
    session.server =
        std::make_unique<InferenceServer>(*session.backend, snapshot, std::move(serving));
    for (int s = 0; s < session.sharded->num_shards(); ++s) {
      session.compactors.push_back(
          std::make_unique<Compactor>(session.sharded->shard(s), compaction));
      if (publisher.staleness_budget > 0.0)
        session.publishers.push_back(
            std::make_unique<Publisher>(session.sharded->shard(s), publisher));
    }
    session.adopter = std::make_unique<CutAdopter>(*session.sharded, adopter);
    if (expiry.enabled()) {
      if (expiry.pending_op_budget == ExpiryPolicy::kDeriveFromCompaction)
        expiry.pending_op_budget = compaction.max_overlay_edges / 2;
      session.sweeper = std::make_unique<ExpirySweeper>(*session.backend, expiry);
    }
    return session;
  }

  HybridTrainer& runtime() { return trainer_; }
  GnnModel& model() { return trainer_.model(); }

 private:
  const Dataset* dataset_;
  HybridTrainer trainer_;
};

}  // namespace hyscale
