#include "core/hyscale.hpp"

// Facade is header-only; this translation unit exists to type-check the
// umbrella header in isolation and to anchor the library version symbol.

namespace hyscale {
static_assert(kVersion[0] == '1', "version anchor");
}  // namespace hyscale
