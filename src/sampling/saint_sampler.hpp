// GraphSAINT-style random-walk subgraph sampler (Zeng et al., cited by
// the paper as the second sampling algorithm its Sampler supports).
//
// Instead of layered neighbor expansion it samples a set of root
// vertices, performs fixed-length random walks, and returns the induced
// subgraph; all GNN layers then run on that one subgraph.  The runtime
// exposes it to demonstrate that the Mini-batch Sampler component is
// algorithm-agnostic (§III-A), and its empirically measured cost feeds
// T_samp (the paper deliberately measures rather than models sampling).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace hyscale {

struct SaintConfig {
  std::int64_t num_roots = 256;
  int walk_length = 2;
  std::uint64_t seed = 1;
};

struct Subgraph {
  std::vector<VertexId> nodes;  ///< global ids of the induced vertex set
  CsrGraph adjacency;           ///< induced adjacency over local ids

  std::int64_t num_nodes() const { return static_cast<std::int64_t>(nodes.size()); }
};

class SaintRandomWalkSampler {
 public:
  SaintRandomWalkSampler(const CsrGraph& graph, SaintConfig config);

  /// Samples one induced subgraph; deterministic per (seed, call index).
  Subgraph sample();

  void reseed(std::uint64_t seed) { stream_ = seed; }

 private:
  const CsrGraph& graph_;
  SaintConfig config_;
  std::uint64_t stream_;
};

}  // namespace hyscale
