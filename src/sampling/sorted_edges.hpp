// Source-sorted edge view of a LayerBlock — the data layout the FPGA
// scatter-gather kernel consumes (§IV-C).
//
// Sorting a block's edges by source vertex lets the Feature Duplicator
// fetch each source feature exactly once and reuse it for every incident
// edge, reducing aggregation input traffic from O(|E^l|) feature reads to
// O(|V^{l-1}|).  `unique_sources` is exactly the number of feature
// fetches the FPGA cost model charges.
#pragma once

#include <cstdint>
#include <vector>

#include "sampling/minibatch.hpp"

namespace hyscale {

struct SortedEdgeBlock {
  /// Edge list sorted by (src, dst), both local indices.
  std::vector<std::int64_t> src;
  std::vector<std::int64_t> dst;
  /// Number of distinct source vertices among the edges.
  std::int64_t unique_sources = 0;
  /// Length of the longest same-source run (max feature reuse).
  std::int64_t max_run = 0;

  std::int64_t num_edges() const { return static_cast<std::int64_t>(src.size()); }

  /// Feature reads a gather kernel performs with / without duplication.
  std::int64_t reads_with_reuse() const { return unique_sources; }
  std::int64_t reads_without_reuse() const { return num_edges(); }
};

/// Builds the sorted edge view of one block.
SortedEdgeBlock sort_edges_by_source(const LayerBlock& block);

}  // namespace hyscale
