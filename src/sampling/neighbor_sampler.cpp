#include "sampling/neighbor_sampler.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace hyscale {

NeighborSampler::NeighborSampler(const CsrGraph& graph, std::vector<int> fanouts,
                                 std::uint64_t seed)
    : graph_(graph), fanouts_(std::move(fanouts)), stream_(seed) {
  if (fanouts_.empty()) throw std::invalid_argument("NeighborSampler: fanouts empty");
  for (int f : fanouts_) {
    if (f <= 0) throw std::invalid_argument("NeighborSampler: fanouts must be positive");
  }
  local_of_.assign(static_cast<std::size_t>(graph.num_vertices()), 0);
}

void NeighborSampler::reseed(std::uint64_t seed) { stream_ = seed; }

NeighborSampler::Frontier NeighborSampler::expand(const std::vector<VertexId>& dst, int fanout) {
  Frontier frontier;
  LayerBlock& block = frontier.block;
  block.num_dst = static_cast<std::int64_t>(dst.size());
  block.src_nodes = dst;  // dst prefix convention
  block.indptr.reserve(dst.size() + 1);
  block.indptr.push_back(0);

  // Map global id -> local position + 1 (0 means absent).
  for (std::size_t i = 0; i < dst.size(); ++i) {
    local_of_[static_cast<std::size_t>(dst[i])] = static_cast<std::int64_t>(i) + 1;
    touched_.push_back(dst[i]);
  }

  Xoshiro256 rng(splitmix64(stream_));
  std::vector<VertexId> reservoir;
  for (VertexId v : dst) {
    const auto neighbors = graph_.neighbors(v);
    const auto degree = static_cast<std::int64_t>(neighbors.size());
    const std::int64_t take = std::min<std::int64_t>(fanout, degree);
    reservoir.assign(neighbors.begin(), neighbors.end());
    // Partial Fisher-Yates: the first `take` entries become a uniform
    // sample without replacement.
    for (std::int64_t i = 0; i < take; ++i) {
      const auto j = i + static_cast<std::int64_t>(
                             rng.bounded(static_cast<std::uint64_t>(degree - i)));
      std::swap(reservoir[static_cast<std::size_t>(i)], reservoir[static_cast<std::size_t>(j)]);
      const VertexId u = reservoir[static_cast<std::size_t>(i)];
      std::int64_t& slot = local_of_[static_cast<std::size_t>(u)];
      if (slot == 0) {
        block.src_nodes.push_back(u);
        slot = static_cast<std::int64_t>(block.src_nodes.size());
        touched_.push_back(u);
      }
      block.indices.push_back(slot - 1);
    }
    block.indptr.push_back(static_cast<EdgeId>(block.indices.size()));
  }

  for (VertexId v : touched_) local_of_[static_cast<std::size_t>(v)] = 0;
  touched_.clear();

  // True graph degrees for the GCN normalisation (Eq. 3 uses D(v) of the
  // original graph).
  block.src_degrees.reserve(block.src_nodes.size());
  for (VertexId v : block.src_nodes) block.src_degrees.push_back(graph_.degree(v));

  frontier.nodes = block.src_nodes;
  return frontier;
}

MiniBatch NeighborSampler::sample(const std::vector<VertexId>& seeds) {
  if (seeds.empty()) throw std::invalid_argument("NeighborSampler::sample: empty seeds");
  for (VertexId s : seeds) {
    if (s < 0 || s >= graph_.num_vertices())
      throw std::invalid_argument("NeighborSampler::sample: seed out of range");
  }
  MiniBatch batch;
  batch.seeds = seeds;
  const int num_layers = static_cast<int>(fanouts_.size());
  batch.blocks.resize(static_cast<std::size_t>(num_layers));

  std::vector<VertexId> frontier = seeds;
  // Top-down: output layer first, then inward toward the input features.
  for (int l = num_layers - 1; l >= 0; --l) {
    ++stream_;
    Frontier next = expand(frontier, fanouts_[static_cast<std::size_t>(l)]);
    batch.blocks[static_cast<std::size_t>(l)] = std::move(next.block);
    frontier = std::move(next.nodes);
  }
  return batch;
}

BatchStats NeighborSampler::expected_stats(std::int64_t batch_size,
                                           const std::vector<int>& fanouts, double mean_degree,
                                           std::uint64_t num_vertices) {
  const int num_layers = static_cast<int>(fanouts.size());
  BatchStats s;
  s.vertices_per_layer.assign(static_cast<std::size_t>(num_layers) + 1, 0);
  s.edges_per_layer.assign(static_cast<std::size_t>(num_layers), 0);

  // Walk top-down (layer L .. 1): frontier grows by min(fanout, degree)+self.
  double frontier = static_cast<double>(batch_size);
  s.vertices_per_layer[static_cast<std::size_t>(num_layers)] =
      static_cast<std::int64_t>(frontier);
  for (int l = num_layers - 1; l >= 0; --l) {
    const double effective_fanout =
        std::min(static_cast<double>(fanouts[static_cast<std::size_t>(l)]), mean_degree);
    const double edges = frontier * effective_fanout;
    double next = frontier * (1.0 + effective_fanout);
    next = std::min(next, static_cast<double>(num_vertices));
    s.edges_per_layer[static_cast<std::size_t>(l)] = static_cast<std::int64_t>(edges);
    s.vertices_per_layer[static_cast<std::size_t>(l)] = static_cast<std::int64_t>(next);
    frontier = next;
  }
  return s;
}

MiniBatch sample_full(const CsrGraph& graph, const std::vector<VertexId>& seeds, int num_layers) {
  if (num_layers <= 0) throw std::invalid_argument("sample_full: num_layers must be positive");
  // Equivalent to a NeighborSampler with fanout >= max degree: every
  // neighbor is taken, deterministically.
  const int fanout = static_cast<int>(
      std::max<EdgeId>(1, graph.max_degree()));
  NeighborSampler sampler(graph, std::vector<int>(static_cast<std::size_t>(num_layers), fanout),
                          /*seed=*/0);
  return sampler.sample(seeds);
}

}  // namespace hyscale
