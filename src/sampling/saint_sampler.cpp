#include "sampling/saint_sampler.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "common/rng.hpp"
#include "graph/builder.hpp"

namespace hyscale {

SaintRandomWalkSampler::SaintRandomWalkSampler(const CsrGraph& graph, SaintConfig config)
    : graph_(graph), config_(config), stream_(config.seed) {
  if (config_.num_roots <= 0) throw std::invalid_argument("Saint: num_roots must be positive");
  if (config_.walk_length < 0) throw std::invalid_argument("Saint: walk_length must be >= 0");
  if (graph_.num_vertices() == 0) throw std::invalid_argument("Saint: empty graph");
}

Subgraph SaintRandomWalkSampler::sample() {
  Xoshiro256 rng(splitmix64(stream_));
  ++stream_;

  std::unordered_map<VertexId, std::int64_t> local;
  std::vector<VertexId> nodes;
  auto touch = [&](VertexId v) {
    auto [it, inserted] = local.try_emplace(v, static_cast<std::int64_t>(nodes.size()));
    if (inserted) nodes.push_back(v);
    return it->second;
  };

  const auto n = static_cast<std::uint64_t>(graph_.num_vertices());
  for (std::int64_t r = 0; r < config_.num_roots; ++r) {
    VertexId v = static_cast<VertexId>(rng.bounded(n));
    touch(v);
    for (int step = 0; step < config_.walk_length; ++step) {
      const auto neighbors = graph_.neighbors(v);
      if (neighbors.empty()) break;
      v = neighbors[static_cast<std::size_t>(rng.bounded(neighbors.size()))];
      touch(v);
    }
  }

  // Induce the subgraph: keep edges with both endpoints sampled.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (VertexId u : graph_.neighbors(nodes[i])) {
      auto it = local.find(u);
      if (it != local.end()) {
        edges.emplace_back(static_cast<VertexId>(i), it->second);
      }
    }
  }
  EdgeListOptions options;
  options.symmetrize = false;       // the input is already symmetric
  options.remove_self_loops = false;
  Subgraph sub;
  sub.adjacency = build_csr(static_cast<VertexId>(nodes.size()), std::move(edges), options);
  sub.nodes = std::move(nodes);
  return sub;
}

}  // namespace hyscale
