// GraphSAGE uniform neighbor sampler (Hamilton et al.), the mini-batch
// producer the paper evaluates with (fanout (25, 10), batch 1024).
//
// Sampling proceeds top-down from the seed vertices: for layer l = L..1
// each frontier vertex draws up to fanout[l-1] distinct neighbors without
// replacement.  Destination vertices are kept as the prefix of each
// block's src list so self-features are available to SAGE's concat and
// GCN's self-loop without extra gathers.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "sampling/minibatch.hpp"

namespace hyscale {

class NeighborSampler {
 public:
  /// `fanouts` are ordered from the layer closest to the input to the
  /// output layer, matching the paper's "(25, 10)" notation.
  NeighborSampler(const CsrGraph& graph, std::vector<int> fanouts, std::uint64_t seed);

  /// Samples one mini-batch for the given seed (target) vertices.
  MiniBatch sample(const std::vector<VertexId>& seeds);

  /// Deterministically re-seeds the internal stream (used by tests and by
  /// per-trainer decorrelated streams).
  void reseed(std::uint64_t seed);

  const std::vector<int>& fanouts() const { return fanouts_; }

  /// Expected per-layer frontier growth for the performance model: with
  /// fanout k and batch b the next frontier has <= b * (k + 1) vertices;
  /// `expected_stats` applies the paper's closed-form upper bound, capped
  /// by the dataset's vertex count.
  static BatchStats expected_stats(std::int64_t batch_size, const std::vector<int>& fanouts,
                                   double mean_degree, std::uint64_t num_vertices);

 private:
  struct Frontier {
    std::vector<VertexId> nodes;
    LayerBlock block;
  };
  /// Builds one bipartite block for the current frontier (dst) set.
  Frontier expand(const std::vector<VertexId>& dst, int fanout);

  const CsrGraph& graph_;
  std::vector<int> fanouts_;
  std::uint64_t stream_;
  std::vector<std::int64_t> local_of_;  ///< scratch: global -> local (+1), 0 = absent
  std::vector<VertexId> touched_;       ///< scratch: which entries of local_of_ are set
};

/// Full-neighborhood sampler (no fanout cap) — the exact computation
/// graph; used by equivalence tests against whole-graph propagation.
MiniBatch sample_full(const CsrGraph& graph, const std::vector<VertexId>& seeds, int num_layers);

}  // namespace hyscale
