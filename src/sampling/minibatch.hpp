// Mini-batch representation: one bipartite "block" per GNN layer.
//
// The Mini-batch Sampler (§III-A) extracts {G(V^l, E^l) : 1 <= l <= L}
// from the input graph.  We store each layer as a bipartite CSR block,
// following the message-flow-graph convention:
//   * blocks[l-1] is the layer-l computation graph;
//   * block.src_nodes are global vertex ids, ordered so the first
//     `num_dst` entries are exactly the block's destination vertices —
//     this lets layer outputs feed the next layer by simple row prefix;
//   * block.indptr / block.indices form a CSR over *local* indices
//     (dst i's sampled in-neighbors are local src positions).
// blocks.front() consumes the input features X' (over input_nodes()),
// blocks.back() produces embeddings for the seed (target) vertices.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace hyscale {

struct LayerBlock {
  std::int64_t num_dst = 0;
  std::vector<VertexId> src_nodes;       ///< global ids; first num_dst are the dst set
  std::vector<EdgeId> indptr;            ///< size num_dst + 1
  std::vector<std::int64_t> indices;     ///< local src positions
  /// TRUE graph degree of each src vertex (filled by the sampler).  GCN's
  /// Eq. 3 normalisation uses D(v) of the original graph, not the
  /// sampled degree; empty = fall back to block-local degrees (used by
  /// hand-built blocks in tests).
  std::vector<EdgeId> src_degrees;

  std::int64_t num_src() const { return static_cast<std::int64_t>(src_nodes.size()); }
  EdgeId num_edges() const { return indptr.empty() ? 0 : indptr.back(); }

  /// Structural invariants; used by property tests.
  bool validate() const;
};

/// Per-layer cardinalities |V^l|, |E^l| — the quantities the performance
/// model (Eqs. 5-12) consumes.
struct BatchStats {
  std::vector<std::int64_t> vertices_per_layer;  ///< index 0 = V^0 (input nodes)
  std::vector<std::int64_t> edges_per_layer;     ///< index l-1 = |E^l|

  std::int64_t input_vertices() const {
    return vertices_per_layer.empty() ? 0 : vertices_per_layer.front();
  }
  std::int64_t total_edges() const;

  /// Element-wise sum; used to aggregate across the trainers of one
  /// iteration (the Eq. 5 numerator).
  static BatchStats sum(const std::vector<BatchStats>& parts);
};

struct MiniBatch {
  std::vector<VertexId> seeds;      ///< target vertices V^L
  std::vector<LayerBlock> blocks;   ///< blocks[0] = innermost layer

  int num_layers() const { return static_cast<int>(blocks.size()); }
  /// The vertices whose features the Feature Loader must gather (V^0).
  const std::vector<VertexId>& input_nodes() const { return blocks.front().src_nodes; }

  BatchStats stats() const;

  /// Bytes of the feature sub-matrix X' for feature length f0.
  double feature_bytes(int f0) const {
    return blocks.empty() ? 0.0
                          : static_cast<double>(blocks.front().src_nodes.size()) * f0 * 4.0;
  }

  bool validate() const;
};

}  // namespace hyscale
