// Shared fanout/RNG sampling core for view-backed GraphSAGE samplers.
//
// OverlaySampler (stream/) and ShardedSampler (shard/) promise the SAME
// bit-identity contract: over a logical graph state, the produced
// MiniBatch must equal NeighborSampler's over a rebuilt CSR, edge for
// edge and RNG draw for RNG draw.  That discipline — dst-prefix layout,
// partial Fisher-Yates over the view's merged live adjacency, one
// Xoshiro256(splitmix64(stream)) per layer with ++stream between
// layers, true live degrees for the GCN normalisation — used to live
// in two textually-identical copies.  It now lives here once, templated
// on the snapshot view type (GraphVersion or ShardedCut); the typed
// samplers are thin wrappers that keep their public names and error
// messages.
//
// The view type must provide: num_vertices(), degree(v), max_degree(),
// and append_neighbors(v, out) yielding the merged live adjacency in
// the same element order a rebuilt CSR would store.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sampling/minibatch.hpp"

namespace hyscale {

/// Naming bundle so each typed wrapper's exceptions keep its own class
/// name and view noun ("OverlaySampler" / "version", "ShardedSampler" /
/// "cut") without duplicating the core.
struct FanoutSamplerNames {
  const char* sampler;  ///< e.g. "OverlaySampler"
  const char* setter;   ///< e.g. "set_version"
  const char* noun;     ///< e.g. "version"
};

template <class View>
class FanoutSamplerCore {
 public:
  /// `fanouts` ordered input-layer first, like NeighborSampler.
  FanoutSamplerCore(std::shared_ptr<const View> view, std::vector<int> fanouts,
                    std::uint64_t seed, FanoutSamplerNames names)
      : view_(std::move(view)), fanouts_(std::move(fanouts)), stream_(seed), names_(names) {
    if (!view_)
      throw std::invalid_argument(std::string(names_.sampler) + ": null " + names_.noun);
    if (fanouts_.empty())
      throw std::invalid_argument(std::string(names_.sampler) + ": fanouts empty");
    for (int f : fanouts_) {
      if (f <= 0)
        throw std::invalid_argument(std::string(names_.sampler) +
                                    ": fanouts must be positive");
    }
    local_of_.assign(static_cast<std::size_t>(view_->num_vertices()), 0);
  }

  /// Samples one mini-batch for the given seed vertices against the
  /// current view.
  MiniBatch sample(const std::vector<VertexId>& seeds) {
    if (seeds.empty())
      throw std::invalid_argument(std::string(names_.sampler) + "::sample: empty seeds");
    for (VertexId s : seeds) {
      if (s < 0 || s >= view_->num_vertices())
        throw std::invalid_argument(std::string(names_.sampler) +
                                    "::sample: seed out of range");
    }
    MiniBatch batch;
    batch.seeds = seeds;
    const int num_layers = static_cast<int>(fanouts_.size());
    batch.blocks.resize(static_cast<std::size_t>(num_layers));

    std::vector<VertexId> frontier = seeds;
    // Top-down: output layer first, then inward toward the input features.
    for (int l = num_layers - 1; l >= 0; --l) {
      ++stream_;
      Frontier next = expand(frontier, fanouts_[static_cast<std::size_t>(l)]);
      batch.blocks[static_cast<std::size_t>(l)] = std::move(next.block);
      frontier = std::move(next.nodes);
    }
    return batch;
  }

  void reseed(std::uint64_t seed) { stream_ = seed; }

  const std::vector<int>& fanouts() const { return fanouts_; }

 protected:
  /// Points the sampler at a newer view (scratch is re-sized for the
  /// grown vertex space).  Cheap when the vertex count is unchanged.
  void set_view(std::shared_ptr<const View> view) {
    if (!view)
      throw std::invalid_argument(std::string(names_.sampler) + "::" + names_.setter +
                                  ": null " + names_.noun);
    view_ = std::move(view);
    if (static_cast<std::size_t>(view_->num_vertices()) > local_of_.size()) {
      local_of_.resize(static_cast<std::size_t>(view_->num_vertices()), 0);
    }
  }

  const View& view() const { return *view_; }

 private:
  struct Frontier {
    std::vector<VertexId> nodes;
    LayerBlock block;
  };

  Frontier expand(const std::vector<VertexId>& dst, int fanout) {
    Frontier frontier;
    LayerBlock& block = frontier.block;
    block.num_dst = static_cast<std::int64_t>(dst.size());
    block.src_nodes = dst;  // dst prefix convention
    block.indptr.reserve(dst.size() + 1);
    block.indptr.push_back(0);

    for (std::size_t i = 0; i < dst.size(); ++i) {
      local_of_[static_cast<std::size_t>(dst[i])] = static_cast<std::int64_t>(i) + 1;
      touched_.push_back(dst[i]);
    }

    Xoshiro256 rng(splitmix64(stream_));
    for (VertexId v : dst) {
      // The view's merged live adjacency (base minus tombstones plus
      // insertions, sorted; sharded: the owner shard's copy) — element
      // for element what a rebuilt CSR would store, so the partial
      // Fisher-Yates below draws the same sample a NeighborSampler over
      // the rebuild would.
      combined_.clear();
      view_->append_neighbors(v, combined_);
      const auto degree = static_cast<std::int64_t>(combined_.size());
      const std::int64_t take = std::min<std::int64_t>(fanout, degree);
      // Partial Fisher-Yates: the first `take` entries become a uniform
      // sample without replacement.
      for (std::int64_t i = 0; i < take; ++i) {
        const auto j = i + static_cast<std::int64_t>(
                               rng.bounded(static_cast<std::uint64_t>(degree - i)));
        std::swap(combined_[static_cast<std::size_t>(i)],
                  combined_[static_cast<std::size_t>(j)]);
        const VertexId u = combined_[static_cast<std::size_t>(i)];
        std::int64_t& slot = local_of_[static_cast<std::size_t>(u)];
        if (slot == 0) {
          block.src_nodes.push_back(u);
          slot = static_cast<std::int64_t>(block.src_nodes.size());
          touched_.push_back(u);
        }
        block.indices.push_back(slot - 1);
      }
      block.indptr.push_back(static_cast<EdgeId>(block.indices.size()));
    }

    for (VertexId v : touched_) local_of_[static_cast<std::size_t>(v)] = 0;
    touched_.clear();

    // True live degrees for the GCN normalisation — the live graph's
    // D(v), not the sampled degree.
    block.src_degrees.reserve(block.src_nodes.size());
    for (VertexId v : block.src_nodes) block.src_degrees.push_back(view_->degree(v));

    frontier.nodes = block.src_nodes;
    return frontier;
  }

  std::shared_ptr<const View> view_;
  std::vector<int> fanouts_;
  std::uint64_t stream_;
  FanoutSamplerNames names_;
  std::vector<std::int64_t> local_of_;  ///< scratch: global -> local (+1), 0 = absent
  std::vector<VertexId> touched_;       ///< scratch: which entries of local_of_ are set
  std::vector<VertexId> combined_;      ///< scratch: one vertex's merged live adjacency
};

/// Full-neighborhood (exact) computation graph over a view — the shared
/// implementation behind sample_full_overlay / sample_full_sharded.  Any
/// take-everything fanout >= every live degree takes every neighbor and
/// burns the same number of RNG draws (one per taken edge), so the
/// bound's exact value never changes the batch — the flat and sharded
/// exact paths agree even though their max-degree bounds may differ.
template <class Sampler, class View>
MiniBatch sample_full_via(const View& view, const std::vector<VertexId>& seeds,
                          int num_layers, const char* caller) {
  if (num_layers <= 0)
    throw std::invalid_argument(std::string(caller) + ": num_layers must be positive");
  const int fanout = static_cast<int>(std::max<EdgeId>(1, view.max_degree()));
  // The view is borrowed for the sampler's (stack-bound) lifetime.
  Sampler sampler(std::shared_ptr<const View>(&view, [](const View*) {}),
                  std::vector<int>(static_cast<std::size_t>(num_layers), fanout),
                  /*seed=*/0);
  return sampler.sample(seeds);
}

}  // namespace hyscale
