#include "sampling/minibatch.hpp"

namespace hyscale {

bool LayerBlock::validate() const {
  if (num_dst < 0 || num_dst > num_src()) return false;
  if (indptr.size() != static_cast<std::size_t>(num_dst) + 1) return false;
  if (!indptr.empty() && indptr.front() != 0) return false;
  for (std::size_t i = 1; i < indptr.size(); ++i) {
    if (indptr[i] < indptr[i - 1]) return false;
  }
  if (!indptr.empty() && indptr.back() != static_cast<EdgeId>(indices.size())) return false;
  for (std::int64_t local : indices) {
    if (local < 0 || local >= num_src()) return false;
  }
  if (!src_degrees.empty() &&
      src_degrees.size() != static_cast<std::size_t>(num_src()))
    return false;
  return true;
}

std::int64_t BatchStats::total_edges() const {
  std::int64_t total = 0;
  for (std::int64_t e : edges_per_layer) total += e;
  return total;
}

BatchStats BatchStats::sum(const std::vector<BatchStats>& parts) {
  BatchStats out;
  for (const auto& p : parts) {
    if (out.vertices_per_layer.size() < p.vertices_per_layer.size())
      out.vertices_per_layer.resize(p.vertices_per_layer.size(), 0);
    if (out.edges_per_layer.size() < p.edges_per_layer.size())
      out.edges_per_layer.resize(p.edges_per_layer.size(), 0);
    for (std::size_t i = 0; i < p.vertices_per_layer.size(); ++i)
      out.vertices_per_layer[i] += p.vertices_per_layer[i];
    for (std::size_t i = 0; i < p.edges_per_layer.size(); ++i)
      out.edges_per_layer[i] += p.edges_per_layer[i];
  }
  return out;
}

BatchStats MiniBatch::stats() const {
  BatchStats s;
  if (blocks.empty()) return s;
  s.vertices_per_layer.reserve(blocks.size() + 1);
  s.vertices_per_layer.push_back(blocks.front().num_src());  // V^0
  for (const auto& block : blocks) {
    s.vertices_per_layer.push_back(block.num_dst);  // V^l
    s.edges_per_layer.push_back(block.num_edges());
  }
  return s;
}

bool MiniBatch::validate() const {
  if (blocks.empty()) return false;
  for (const auto& block : blocks) {
    if (!block.validate()) return false;
  }
  // Layer chaining: block l's dst set must be the prefix of block l+1's
  // src set (outputs of layer l are the inputs of layer l+1).
  for (std::size_t l = 0; l + 1 < blocks.size(); ++l) {
    const auto& lower = blocks[l];
    const auto& upper = blocks[l + 1];
    if (static_cast<std::int64_t>(upper.src_nodes.size()) > lower.num_dst) return false;
    for (std::size_t i = 0; i < upper.src_nodes.size(); ++i) {
      if (upper.src_nodes[i] != lower.src_nodes[i]) return false;
    }
  }
  // Seeds are the dst prefix of the last block.
  const auto& top = blocks.back();
  if (static_cast<std::int64_t>(seeds.size()) != top.num_dst) return false;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (seeds[i] != top.src_nodes[i]) return false;
  }
  return true;
}

}  // namespace hyscale
