#include "sampling/sorted_edges.hpp"

#include <algorithm>
#include <numeric>

namespace hyscale {

SortedEdgeBlock sort_edges_by_source(const LayerBlock& block) {
  SortedEdgeBlock out;
  const auto num_edges = static_cast<std::size_t>(block.num_edges());
  std::vector<std::pair<std::int64_t, std::int64_t>> edges;
  edges.reserve(num_edges);
  for (std::int64_t d = 0; d < block.num_dst; ++d) {
    for (EdgeId e = block.indptr[static_cast<std::size_t>(d)];
         e < block.indptr[static_cast<std::size_t>(d) + 1]; ++e) {
      edges.emplace_back(block.indices[static_cast<std::size_t>(e)], d);
    }
  }
  std::sort(edges.begin(), edges.end());

  out.src.reserve(edges.size());
  out.dst.reserve(edges.size());
  std::int64_t run = 0;
  std::int64_t previous = -1;
  for (const auto& [s, d] : edges) {
    out.src.push_back(s);
    out.dst.push_back(d);
    if (s != previous) {
      ++out.unique_sources;
      previous = s;
      run = 1;
    } else {
      ++run;
    }
    out.max_run = std::max(out.max_run, run);
  }
  return out;
}

}  // namespace hyscale
