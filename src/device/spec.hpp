// Platform specifications — Table II of the paper plus the interconnect
// parameters the performance model needs.
//
// All bandwidths are *effective* burst bandwidths, not peak (the paper is
// explicit about this below Eq. 8).  The two heterogeneous testbeds are
// reconstructed as factory functions:
//   * cpu_gpu_platform(k):  2x EPYC 7763 + k x NVIDIA RTX A5000
//   * cpu_fpga_platform(k): 2x EPYC 7763 + k x Xilinx Alveo U250
#pragma once

#include <string>
#include <vector>

namespace hyscale {

enum class DeviceKind { kCpu, kGpu, kFpga };

const char* device_kind_name(DeviceKind kind);

struct DeviceSpec {
  std::string name;
  DeviceKind kind = DeviceKind::kCpu;
  double peak_tflops = 0.0;     ///< single-precision peak
  double mem_bw_gbps = 0.0;     ///< attached memory effective bandwidth (GB/s)
  double onchip_mb = 0.0;       ///< L3 / L2 / URAM+BRAM capacity
  double freq_ghz = 0.0;
  double device_mem_gb = 0.0;   ///< global/DDR capacity (feature-cache budget)

  double peak_flops() const { return peak_tflops * 1e12; }
  double mem_bw() const { return mem_bw_gbps * 1e9; }
};

/// Table II rows.
DeviceSpec epyc7763_spec();
DeviceSpec a5000_spec();
DeviceSpec u250_spec();

/// Specs for the state-of-the-art comparison platforms (Table V).
DeviceSpec v100_spec();
DeviceSpec p100_spec();
DeviceSpec t4_spec();
DeviceSpec xeon8163_spec();

struct PlatformSpec {
  std::string name;
  DeviceSpec cpu;               ///< one socket
  int num_sockets = 2;
  int cpu_threads = 128;        ///< total hardware threads usable by the runtime
  std::vector<DeviceSpec> accelerators;
  double pcie_bw_gbps = 25.0;   ///< effective per-accelerator PCIe bandwidth
  double cpu_mem_bw_gbps = 205.0;  ///< aggregate CPU DRAM bandwidth (Table II)
  double cpu_mem_gb = 1024.0;   ///< "several terabytes on high-end nodes"

  int num_accelerators() const { return static_cast<int>(accelerators.size()); }
  /// Aggregate platform compute, the Table VII normalisation factor.
  double total_tflops() const;
  double pcie_bw() const { return pcie_bw_gbps * 1e9; }
  double cpu_mem_bw() const { return cpu_mem_bw_gbps * 1e9; }
};

/// The paper's CPU-GPU testbed: 2x EPYC 7763 + k x A5000 (PCIe 4.0 x16).
PlatformSpec cpu_gpu_platform(int num_gpus);

/// The paper's CPU-FPGA testbed: 2x EPYC 7763 + k x U250 (PCIe 3.0 x16,
/// lower effective bandwidth than the GPU links).
PlatformSpec cpu_fpga_platform(int num_fpgas);

}  // namespace hyscale
