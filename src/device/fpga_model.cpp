#include "device/fpga_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/strutil.hpp"

namespace hyscale {

namespace {
// Affine cost coefficients fitted to the paper's (8, 2048) design point:
//   LUT:  base (platform shell + runtime) + per-PE routing + per-MAC glue
//   DSP:  ~5.4 DSP48E2 per fp32 MAC (mul + add + alignment)
//   URAM: feature buffers per S-PE + weight/result buffers per MAC column
//   BRAM: routing-network FIFOs per PE + systolic-edge buffers
constexpr double kLutBase = 200000.0, kLutPerPe = 40000.0, kLutPerMac = 350.0;
constexpr double kDspPerMac = 5.4;
constexpr double kUramBase = 100.0, kUramPerPe = 16.0, kUramPerMac = 0.188;
constexpr double kBramBase = 200.0, kBramPerPe = 40.0, kBramPerMac = 0.27;
}  // namespace

double FpgaUtilization::max_fraction() const {
  return std::max({lut_fraction, dsp_fraction, uram_fraction, bram_fraction});
}

std::string FpgaUtilization::to_string() const {
  return "LUT " + format_double(lut_fraction * 100.0, 0) + "%  DSP " +
         format_double(dsp_fraction * 100.0, 0) + "%  URAM " +
         format_double(uram_fraction * 100.0, 0) + "%  BRAM " +
         format_double(bram_fraction * 100.0, 0) + "%";
}

FpgaUtilization estimate_utilization(const FpgaDesign& design, const FpgaResources& resources) {
  if (design.n <= 0 || design.m <= 0)
    throw std::invalid_argument("estimate_utilization: n, m must be positive");
  FpgaUtilization utilization;
  utilization.lut_fraction =
      (kLutBase + kLutPerPe * design.n + kLutPerMac * design.m) / resources.luts;
  utilization.dsp_fraction = kDspPerMac * design.m / resources.dsps;
  utilization.uram_fraction =
      (kUramBase + kUramPerPe * design.n + kUramPerMac * design.m) / resources.urams;
  utilization.bram_fraction =
      (kBramBase + kBramPerPe * design.n + kBramPerMac * design.m) / resources.brams;
  return utilization;
}

int max_mac_units(int n, const FpgaResources& resources) {
  int best = 0;
  for (int m = 1; m <= (1 << 20); m *= 2) {
    if (estimate_utilization({n, m}, resources).fits()) {
      best = m;
    } else {
      break;
    }
  }
  return best;
}

}  // namespace hyscale
