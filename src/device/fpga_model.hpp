// FPGA design-space model: resource utilisation as a function of the
// kernel parallelism (n scatter-gather PEs, m MAC units) — Table IV.
//
// The paper reports one design point, (n=8, m=2048) on the Alveo U250 at
// 72% LUT / 90% DSP / 48% URAM / 40% BRAM.  We model utilisation as an
// affine function of (n, m) with coefficients fitted to that point and to
// standard Vitis HLS costs (fp32 MAC ~= 5 DSP48E2; per-PE routing and
// buffering in LUTs/URAM).  This lets benches and tests explore the
// design space and reject configurations that do not fit the part.
#pragma once

#include <string>

namespace hyscale {

/// Available resources of a Xilinx Alveo U250.
struct FpgaResources {
  double luts = 1728000.0;
  double dsps = 12288.0;
  double urams = 1280.0;
  double brams = 2688.0;  ///< 36 Kb blocks
};

struct FpgaDesign {
  int n = 8;      ///< scatter-gather PE pairs (edges processed in parallel)
  int m = 2048;   ///< MAC units in the systolic update array
};

struct FpgaUtilization {
  double lut_fraction = 0.0;
  double dsp_fraction = 0.0;
  double uram_fraction = 0.0;
  double bram_fraction = 0.0;

  bool fits() const {
    return lut_fraction <= 1.0 && dsp_fraction <= 1.0 && uram_fraction <= 1.0 &&
           bram_fraction <= 1.0;
  }
  /// The binding resource (max fraction).
  double max_fraction() const;
  std::string to_string() const;
};

/// Estimated utilisation of `design` on `resources`.
FpgaUtilization estimate_utilization(const FpgaDesign& design,
                                     const FpgaResources& resources = {});

/// Largest m (power of two) that fits alongside `n` PEs; 0 if even m=1
/// does not fit.
int max_mac_units(int n, const FpgaResources& resources = {});

}  // namespace hyscale
