// Interconnect models: PCIe links (host <-> accelerator) and the host
// DRAM channel used by the Feature Loader.
//
// Implements Eqs. 7, 8 and 13 of the paper.  Bandwidths are effective
// burst bandwidths; a small fixed latency per transaction models DMA
// descriptor setup and doorbell overhead (part of the "extra latency not
// formulated" the paper blames for its 5-14% prediction error, §VI-C).
#pragma once

#include <cstdint>

#include "common/timer.hpp"

namespace hyscale {

class PcieLink {
 public:
  explicit PcieLink(double bw_gbps, Seconds latency = 10e-6);

  /// Time to move `bytes` host->device or device->host (Eq. 8).
  Seconds transfer_time(double bytes) const;

  /// Gradient all-reduce over this link (Eq. 13): the model crosses PCIe
  /// twice (gather then broadcast).
  Seconds allreduce_time(double model_bytes) const;

  double bandwidth() const { return bw_; }

 private:
  double bw_;       ///< bytes/s
  Seconds latency_;
};

/// Host DRAM channel as seen by the Feature Loader.  Effective bandwidth
/// scales with the number of loader threads until it saturates a cap of
/// the socket bandwidth (random row gathers cannot reach streaming BW).
class HostMemoryChannel {
 public:
  HostMemoryChannel(double total_bw_gbps, double per_thread_gbps = 4.0,
                    double saturation_fraction = 0.8);

  /// Eq. 7: time to gather `bytes` of features using `threads` threads.
  Seconds load_time(double bytes, int threads) const;

  double effective_bandwidth(int threads) const;

 private:
  double total_bw_;       ///< bytes/s
  double per_thread_bw_;  ///< bytes/s each loader thread can move
  double saturation_;     ///< cap as a fraction of total_bw_
};

}  // namespace hyscale
