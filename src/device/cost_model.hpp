// Trainer cost models — Eqs. 10-12 of the paper, specialised per device.
//
// A cost model answers one question: how long does one GNN Trainer take
// to run forward + backward propagation on a mini-batch with the given
// per-layer cardinalities?  The composition rule is Eq. 10:
//
//   T_trainer = sum_l (+)(t_agg^l, t_upd^l)                 (forward)
//             + t_upd^1 + sum_{l>=2} (+)(t_agg^l, t_upd^l)  (backward)
//
// where (+) is `max` when aggregation and update are pipelined (the FPGA
// kernel of §IV-C) and `+` when they are not (CPU, GPU).
//
// Device-specific structure (this is where the paper's FPGA-vs-GPU gap
// comes from, §VI-E1):
//   * CPU  — aggregation at a thread-share of the host DRAM bandwidth;
//            update at a thread-share of peak FLOPS with a GEMM
//            efficiency factor.
//   * GPU  — aggregation is an irregular row gather whose effective
//            bandwidth collapses to a small fraction of GDDR peak
//            ("traditional cache policies fail to capture the data access
//            pattern", §VI-E1); every layer additionally spills its
//            intermediate to device memory and launches kernels.
//   * FPGA — source-sorted edges + Feature Duplicator make input traffic
//            O(|V^{l-1}|) instead of O(|E^l|); aggregate and update are
//            pipelined; intermediates stay on-chip (no spill).
// All constants that are not in Table II are named, documented, and
// defaulted here so the calibration is auditable.
#pragma once

#include <cstdint>
#include <memory>

#include "common/timer.hpp"
#include "device/spec.hpp"
#include "nn/model.hpp"
#include "sampling/minibatch.hpp"

namespace hyscale {

class TrainerCostModel {
 public:
  virtual ~TrainerCostModel() = default;

  /// Feature-aggregation time for one layer (Eq. 11).  `unique_sources`
  /// = |V^{l-1}| enables the FPGA's O(V) traffic; other devices charge
  /// O(edges).
  virtual Seconds aggregate_time(std::int64_t edges, std::int64_t unique_sources,
                                 int f_in) const = 0;

  /// Feature-update (MLP) time for one layer (Eq. 12).  `f_agg` is the
  /// aggregated feature width (2*f_in for SAGE concat).
  virtual Seconds update_time(std::int64_t num_dst, int f_agg, int f_out) const = 0;

  /// Fixed per-layer overhead (kernel launches); 0 for CPU/FPGA.
  virtual Seconds layer_overhead() const { return 0.0; }

  /// Whether aggregate and update overlap ((+) = max).
  virtual bool pipelined() const = 0;

  /// Full forward+backward time per Eq. 10.
  Seconds propagation_time(const BatchStats& stats, const ModelConfig& model) const;

  /// The device this model describes (for reporting).
  virtual const DeviceSpec& spec() const = 0;
};

/// CPU trainer: a *share* of the host's threads and memory bandwidth is
/// assigned to training; DRM's balance_thread moves that share around.
class CpuTrainerModel final : public TrainerCostModel {
 public:
  CpuTrainerModel(const PlatformSpec& platform, int threads);

  void set_threads(int threads);
  int threads() const { return threads_; }

  Seconds aggregate_time(std::int64_t edges, std::int64_t unique_sources,
                         int f_in) const override;
  Seconds update_time(std::int64_t num_dst, int f_agg, int f_out) const override;
  bool pipelined() const override { return false; }
  const DeviceSpec& spec() const override { return cpu_; }

  /// Fraction of GEMM peak sustained on the skinny (batch x 100..512)
  /// matrices GNN layers produce; far below the ~0.9 of square sgemm.
  static constexpr double kGemmEfficiency = 0.35;
  /// Fraction of DRAM bandwidth an irregular feature gather + scatter-add
  /// sustains on a CPU: random 400-3000 B rows defeat the prefetchers,
  /// and the aggregation does a read-modify-write per destination.
  /// Calibrated so one CPU trainer's seed rate is comparable to a single
  /// A5000 trainer, matching the paper's hybrid-speedup argument
  /// ((7.2 + 27.8)/27.8 per §I with 4 GPUs sharing the gain).
  static constexpr double kGatherEfficiency = 0.10;

 private:
  DeviceSpec cpu_;
  double sockets_flops_ = 0.0;  ///< both sockets, peak
  double mem_bw_ = 0.0;         ///< aggregate host DRAM bandwidth
  int total_threads_ = 1;
  int threads_ = 1;
};

/// GPU trainer (A5000-class).
class GpuTrainerModel final : public TrainerCostModel {
 public:
  /// `gather_efficiency` overrides kGatherEfficiency for systems whose
  /// access locality differs from a monolithic-graph A5000 setup (e.g.
  /// DistDGLv2 trains on METIS partitions that fit cache far better).
  explicit GpuTrainerModel(const DeviceSpec& gpu, double gather_efficiency = kGatherEfficiency);

  Seconds aggregate_time(std::int64_t edges, std::int64_t unique_sources,
                         int f_in) const override;
  Seconds update_time(std::int64_t num_dst, int f_agg, int f_out) const override;
  Seconds layer_overhead() const override { return kKernelLaunch * 2.0; }
  bool pipelined() const override { return false; }
  const DeviceSpec& spec() const override { return gpu_; }

  /// Effective fraction of GDDR bandwidth for 400-3000 B random row
  /// gathers in GNN aggregation.  Calibrated so the CPU-FPGA : CPU-GPU
  /// epoch-time ratio matches the paper's 5-6x (§VI-E1); the paper
  /// attributes the GPU's loss to cache policies that fail on GNN access
  /// patterns [33] — every gather both misses L2 and drags a full cache
  /// line per few useful bytes, and the scatter side read-modify-writes.
  static constexpr double kGatherEfficiency = 0.005;
  /// cuBLAS-style sustained GEMM fraction for skinny GNN matrices.
  static constexpr double kGemmEfficiency = 0.35;
  static constexpr Seconds kKernelLaunch = 30e-6;

  double gather_efficiency() const { return gather_efficiency_; }

 private:
  DeviceSpec gpu_;
  double gather_efficiency_;
};

/// FPGA trainer (§IV-C kernel: n scatter-gather PEs, m-MAC systolic
/// array, fused datapath).
class FpgaTrainerModel final : public TrainerCostModel {
 public:
  FpgaTrainerModel(const DeviceSpec& fpga, int n_scatter_pes, int m_mac_units);

  Seconds aggregate_time(std::int64_t edges, std::int64_t unique_sources,
                         int f_in) const override;
  Seconds update_time(std::int64_t num_dst, int f_agg, int f_out) const override;
  bool pipelined() const override { return true; }  // (+) = max (§V)
  const DeviceSpec& spec() const override { return fpga_; }

  int n() const { return n_; }
  int m() const { return m_; }

  /// Floats per cycle each scatter-gather PE consumes (512-bit datapath).
  static constexpr int kSimdLanes = 16;

 private:
  DeviceSpec fpga_;
  int n_;
  int m_;
};

/// Builds the appropriate model for a device spec (FPGA gets the Table IV
/// default parallelism n=8, m=2048).
std::unique_ptr<TrainerCostModel> make_trainer_model(const PlatformSpec& platform,
                                                     const DeviceSpec& device);

}  // namespace hyscale
