#include "device/cost_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace hyscale {

namespace {
constexpr double kFeatBytes = 4.0;  // S_feat, single-precision
}

Seconds TrainerCostModel::propagation_time(const BatchStats& stats,
                                           const ModelConfig& model) const {
  const int num_layers = model.num_layers();
  if (static_cast<int>(stats.edges_per_layer.size()) < num_layers)
    throw std::invalid_argument("propagation_time: stats/model layer mismatch");

  auto combine = [this](Seconds agg, Seconds upd) {
    return pipelined() ? std::max(agg, upd) : agg + upd;
  };

  Seconds forward = 0.0, backward = 0.0;
  for (int l = 1; l <= num_layers; ++l) {
    const int f_in = model.dims[static_cast<std::size_t>(l - 1)];
    const int f_out = model.dims[static_cast<std::size_t>(l)];
    // SAGE's concat doubles the update width; GCN and GAT keep f_in.
    const int f_agg = model.kind == GnnKind::kSage ? 2 * f_in : f_in;
    const std::int64_t edges = stats.edges_per_layer[static_cast<std::size_t>(l - 1)];
    const std::int64_t sources = stats.vertices_per_layer[static_cast<std::size_t>(l - 1)];
    const std::int64_t dst = stats.vertices_per_layer[static_cast<std::size_t>(l)];

    const Seconds t_agg = aggregate_time(edges, sources, f_in);
    const Seconds t_upd = update_time(dst, f_agg, f_out);
    forward += combine(t_agg, t_upd) + layer_overhead();
    // Eq. 10 backward: layer 1 re-runs only the update; layers >= 2 re-run
    // both (gradient aggregation mirrors forward aggregation).
    if (l == 1) {
      backward += t_upd + layer_overhead();
    } else {
      backward += combine(t_agg, t_upd) + layer_overhead();
    }
  }
  return forward + backward;
}

// ---------------------------------------------------------------- CPU --

CpuTrainerModel::CpuTrainerModel(const PlatformSpec& platform, int threads)
    : cpu_(platform.cpu),
      sockets_flops_(platform.cpu.peak_flops() * platform.num_sockets),
      mem_bw_(platform.cpu_mem_bw()),
      total_threads_(platform.cpu_threads) {
  set_threads(threads);
}

void CpuTrainerModel::set_threads(int threads) {
  threads_ = std::clamp(threads, 0, total_threads_);
}

Seconds CpuTrainerModel::aggregate_time(std::int64_t edges, std::int64_t /*unique_sources*/,
                                        int f_in) const {
  if (threads_ == 0) return 1e9;  // no threads assigned: effectively stalled
  const double share = static_cast<double>(threads_) / static_cast<double>(total_threads_);
  const double traffic = static_cast<double>(edges) * f_in * kFeatBytes;
  return traffic / (mem_bw_ * kGatherEfficiency * share);
}

Seconds CpuTrainerModel::update_time(std::int64_t num_dst, int f_agg, int f_out) const {
  if (threads_ == 0) return 1e9;
  const double share = static_cast<double>(threads_) / static_cast<double>(total_threads_);
  const double macs = static_cast<double>(num_dst) * f_agg * f_out;
  const double mac_rate = sockets_flops_ / 2.0 * kGemmEfficiency * share;
  return macs / mac_rate;
}

// ---------------------------------------------------------------- GPU --

GpuTrainerModel::GpuTrainerModel(const DeviceSpec& gpu, double gather_efficiency)
    : gpu_(gpu), gather_efficiency_(gather_efficiency) {
  if (gpu.kind != DeviceKind::kGpu)
    throw std::invalid_argument("GpuTrainerModel: spec is not a GPU");
  if (gather_efficiency <= 0.0 || gather_efficiency > 1.0)
    throw std::invalid_argument("GpuTrainerModel: gather_efficiency out of (0,1]");
}

Seconds GpuTrainerModel::aggregate_time(std::int64_t edges, std::int64_t /*unique_sources*/,
                                        int f_in) const {
  // O(|E^l|) feature reads at gather-degraded bandwidth (Eq. 11 with the
  // device-memory BW), plus writing the aggregated rows back out — the
  // GPU cannot fuse aggregation into the GEMM, so a_v round-trips
  // through device memory (the "intermediate results" spill of §VI-E1).
  const double gather = static_cast<double>(edges) * f_in * kFeatBytes /
                        (gpu_.mem_bw() * gather_efficiency_);
  return gather;
}

Seconds GpuTrainerModel::update_time(std::int64_t num_dst, int f_agg, int f_out) const {
  const double macs = static_cast<double>(num_dst) * f_agg * f_out;
  const double mac_rate = gpu_.peak_flops() / 2.0 * kGemmEfficiency;
  // Spill: the aggregated input is read and the activation written, both
  // streaming (full bandwidth).
  const double spill_bytes =
      static_cast<double>(num_dst) * (f_agg + f_out) * kFeatBytes;
  return macs / mac_rate + spill_bytes / gpu_.mem_bw();
}

// --------------------------------------------------------------- FPGA --

FpgaTrainerModel::FpgaTrainerModel(const DeviceSpec& fpga, int n_scatter_pes, int m_mac_units)
    : fpga_(fpga), n_(n_scatter_pes), m_(m_mac_units) {
  if (fpga.kind != DeviceKind::kFpga)
    throw std::invalid_argument("FpgaTrainerModel: spec is not an FPGA");
  if (n_ <= 0 || m_ <= 0) throw std::invalid_argument("FpgaTrainerModel: n, m must be positive");
}

Seconds FpgaTrainerModel::aggregate_time(std::int64_t edges, std::int64_t unique_sources,
                                         int f_in) const {
  // Input traffic: each distinct source feature is fetched once (edges
  // are pre-sorted by source; the Feature Duplicator broadcasts to all
  // S-PEs), so traffic is O(|V^{l-1}|) not O(|E^l|)  (§IV-C).
  const double traffic = static_cast<double>(unique_sources) * f_in * kFeatBytes;
  const Seconds memory_time = traffic / fpga_.mem_bw();
  // Compute: n scatter-gather PEs each consume kSimdLanes floats/cycle.
  const double elements = static_cast<double>(edges) * f_in;
  const Seconds pe_time = elements / (static_cast<double>(n_) * kSimdLanes * fpga_.freq_ghz * 1e9);
  return std::max(memory_time, pe_time);
}

Seconds FpgaTrainerModel::update_time(std::int64_t num_dst, int f_agg, int f_out) const {
  // m MAC units at the fabric clock; intermediates never leave the chip
  // (custom datapath, §IV-C), so there is no spill term.
  const double macs = static_cast<double>(num_dst) * f_agg * f_out;
  return macs / (static_cast<double>(m_) * fpga_.freq_ghz * 1e9);
}

// ------------------------------------------------------------ factory --

std::unique_ptr<TrainerCostModel> make_trainer_model(const PlatformSpec& platform,
                                                     const DeviceSpec& device) {
  switch (device.kind) {
    case DeviceKind::kCpu:
      return std::make_unique<CpuTrainerModel>(platform, platform.cpu_threads / 2);
    case DeviceKind::kGpu:
      return std::make_unique<GpuTrainerModel>(device);
    case DeviceKind::kFpga:
      return std::make_unique<FpgaTrainerModel>(device, /*n=*/8, /*m=*/2048);
  }
  throw std::invalid_argument("make_trainer_model: unknown device kind");
}

}  // namespace hyscale
