#include "device/sampler_model.hpp"

#include <stdexcept>

namespace hyscale {

SamplerModel::SamplerModel(double cpu_edges_per_sec_per_thread)
    : cpu_rate_(cpu_edges_per_sec_per_thread) {
  if (cpu_rate_ <= 0.0) throw std::invalid_argument("SamplerModel: rate must be positive");
}

Seconds SamplerModel::cpu_sample_time(std::int64_t total_edges, int threads) const {
  if (threads <= 0) return 1e9;  // stage stalls with no threads
  return static_cast<double>(total_edges) / (cpu_rate_ * threads);
}

double SamplerModel::accelerator_rate(const DeviceSpec& device) {
  switch (device.kind) {
    case DeviceKind::kGpu:
      // Massively parallel random walks over device-resident topology;
      // bounded by GDDR random-access rate (~8 B per edge lookup at
      // degraded bandwidth) — order 2e9 edges/s on an A5000-class part.
      return 2.0e9;
    case DeviceKind::kFpga:
      // A modest HLS sampler kernel; the paper runs its FPGA Sampler on
      // the host for large graphs, so keep this conservative.
      return 0.4e9;
    case DeviceKind::kCpu:
      return 0.0;
  }
  return 0.0;
}

void SamplerModel::calibrate_cpu_rate(double edges_per_sec_per_thread) {
  if (edges_per_sec_per_thread <= 0.0)
    throw std::invalid_argument("SamplerModel::calibrate_cpu_rate: rate must be positive");
  cpu_rate_ = edges_per_sec_per_thread;
}

Seconds SamplerModel::accel_sample_time(std::int64_t total_edges, const DeviceSpec& device) const {
  const double rate = accelerator_rate(device);
  if (rate <= 0.0) return 1e9;
  return static_cast<double>(total_edges) / rate;
}

}  // namespace hyscale
