// Sampling-stage cost model.
//
// The paper deliberately does *not* give a closed form for T_samp —
// "we estimate T_samp by running the sampling algorithm under different
// numbers of threads and different mini-batch sizes" (§V).  We mirror
// that: the CPU rate below is a measured per-edge cost (traversal +
// hash-dedup, DRAM-latency bound), and the runtime can re-calibrate it
// from a real measurement of the repository's own NeighborSampler.
#pragma once

#include <cstdint>

#include "common/timer.hpp"
#include "device/spec.hpp"

namespace hyscale {

class SamplerModel {
 public:
  /// `cpu_edges_per_sec_per_thread`: uniform neighbor sampling rate of a
  /// single host thread.  120 ns/edge is a typical measured figure for
  /// fanout sampling with dedup on EPYC-class cores.
  explicit SamplerModel(double cpu_edges_per_sec_per_thread = 1.0 / 120e-9);

  /// Time for `threads` CPU threads to sample batches totalling
  /// `total_edges` sampled edges.
  Seconds cpu_sample_time(std::int64_t total_edges, int threads) const;

  /// Accelerator-side sampling rate (edges/s) for a device; GPUs sample
  /// fast once the topology fits their memory, FPGAs host a modest
  /// sampler kernel, CPUs return 0 here (handled by cpu_sample_time).
  static double accelerator_rate(const DeviceSpec& device);

  Seconds accel_sample_time(std::int64_t total_edges, const DeviceSpec& device) const;

  /// Replace the measured CPU rate (the design-phase "profiling run").
  void calibrate_cpu_rate(double edges_per_sec_per_thread);
  double cpu_rate() const { return cpu_rate_; }

 private:
  double cpu_rate_;
};

}  // namespace hyscale
