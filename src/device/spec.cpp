#include "device/spec.hpp"

namespace hyscale {

const char* device_kind_name(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kCpu: return "CPU";
    case DeviceKind::kGpu: return "GPU";
    case DeviceKind::kFpga: return "FPGA";
  }
  return "?";
}

DeviceSpec epyc7763_spec() {
  // Table II: 2.45 GHz, 3.6 TFLOPS, 256 MB L3, 205 GB/s (per socket pair
  // the paper reports 205 GB/s aggregate; per-socket peak flops is 3.6).
  return {"AMD EPYC 7763", DeviceKind::kCpu, 3.6, 205.0, 256.0, 2.45, 0.0};
}

DeviceSpec a5000_spec() {
  // Table II: 27.8 TFLOPS, 6 MB L2, 768 GB/s, 2.0 GHz, 24 GB GDDR6.
  return {"NVIDIA RTX A5000", DeviceKind::kGpu, 27.8, 768.0, 6.0, 2.0, 24.0};
}

DeviceSpec u250_spec() {
  // Table II: 0.6 TFLOPS, 54 MB on-chip, 77 GB/s, 300 MHz, 64 GB DDR4.
  return {"Xilinx Alveo U250", DeviceKind::kFpga, 0.6, 77.0, 54.0, 0.3, 64.0};
}

DeviceSpec v100_spec() { return {"NVIDIA V100", DeviceKind::kGpu, 15.7, 900.0, 6.0, 1.53, 32.0}; }
DeviceSpec p100_spec() { return {"NVIDIA P100", DeviceKind::kGpu, 9.3, 732.0, 4.0, 1.48, 16.0}; }
DeviceSpec t4_spec() { return {"NVIDIA T4", DeviceKind::kGpu, 8.1, 300.0, 4.0, 1.59, 16.0}; }
DeviceSpec xeon8163_spec() {
  return {"Intel Xeon Platinum 8163", DeviceKind::kCpu, 1.9, 119.0, 33.0, 2.5, 0.0};
}

double PlatformSpec::total_tflops() const {
  double total = cpu.peak_tflops * num_sockets;
  for (const auto& accel : accelerators) total += accel.peak_tflops;
  return total;
}

PlatformSpec cpu_gpu_platform(int num_gpus) {
  PlatformSpec platform;
  platform.name = "2x EPYC 7763 + " + std::to_string(num_gpus) + "x RTX A5000";
  platform.cpu = epyc7763_spec();
  platform.num_sockets = 2;
  platform.cpu_threads = 128;
  platform.accelerators.assign(static_cast<std::size_t>(num_gpus), a5000_spec());
  platform.pcie_bw_gbps = 25.0;  // PCIe 4.0 x16, effective burst
  platform.cpu_mem_bw_gbps = 205.0;
  return platform;
}

PlatformSpec cpu_fpga_platform(int num_fpgas) {
  PlatformSpec platform;
  platform.name = "2x EPYC 7763 + " + std::to_string(num_fpgas) + "x Alveo U250";
  platform.cpu = epyc7763_spec();
  platform.num_sockets = 2;
  platform.cpu_threads = 128;
  platform.accelerators.assign(static_cast<std::size_t>(num_fpgas), u250_spec());
  platform.pcie_bw_gbps = 25.0;  // Alveo U250 also negotiates a x16 link
  platform.cpu_mem_bw_gbps = 205.0;
  return platform;
}

}  // namespace hyscale
