#include "device/link.hpp"

#include <algorithm>
#include <stdexcept>

namespace hyscale {

PcieLink::PcieLink(double bw_gbps, Seconds latency) : bw_(bw_gbps * 1e9), latency_(latency) {
  if (bw_gbps <= 0.0) throw std::invalid_argument("PcieLink: bandwidth must be positive");
}

Seconds PcieLink::transfer_time(double bytes) const {
  if (bytes < 0.0) throw std::invalid_argument("PcieLink::transfer_time: negative bytes");
  return latency_ + bytes / bw_;
}

Seconds PcieLink::allreduce_time(double model_bytes) const {
  // Eq. 13: gather + broadcast = the model crosses the link twice.
  return 2.0 * transfer_time(model_bytes);
}

HostMemoryChannel::HostMemoryChannel(double total_bw_gbps, double per_thread_gbps,
                                     double saturation_fraction)
    : total_bw_(total_bw_gbps * 1e9),
      per_thread_bw_(per_thread_gbps * 1e9),
      saturation_(saturation_fraction) {
  if (total_bw_gbps <= 0.0 || per_thread_gbps <= 0.0 || saturation_fraction <= 0.0)
    throw std::invalid_argument("HostMemoryChannel: parameters must be positive");
}

double HostMemoryChannel::effective_bandwidth(int threads) const {
  if (threads <= 0) return 0.0;
  return std::min(static_cast<double>(threads) * per_thread_bw_, saturation_ * total_bw_);
}

Seconds HostMemoryChannel::load_time(double bytes, int threads) const {
  if (bytes < 0.0) throw std::invalid_argument("HostMemoryChannel::load_time: negative bytes");
  const double bw = effective_bandwidth(threads);
  if (bw <= 0.0) return 1e9;  // no loader threads: stage stalls
  return bytes / bw;
}

}  // namespace hyscale
