// GraphSAGE neighbor sampler over a cross-shard cut.
//
// A structural clone of stream/OverlaySampler with the read surface
// swapped from one GraphVersion to a ShardedCut: every vertex's live
// adjacency and degree are read through its OWNER shard's frozen
// version, which holds the vertex's complete adjacency (the facade
// routes every edge op to both endpoint owners).  The RNG stream
// discipline, partial Fisher-Yates, dst-prefix layout and degree
// reporting are IDENTICAL to OverlaySampler's, so with the same
// fanouts and seed the produced MiniBatch is BIT-IDENTICAL to
// OverlaySampler over a flat StreamingGraph holding the same logical
// state — the invariant the N-shard differential harness asserts at
// every adopted cut.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sampling/minibatch.hpp"
#include "shard/sharded_graph.hpp"

namespace hyscale {

class ShardedSampler {
 public:
  /// `fanouts` ordered input-layer first, like NeighborSampler.
  ShardedSampler(std::shared_ptr<const ShardedCut> cut, std::vector<int> fanouts,
                 std::uint64_t seed);

  /// Points the sampler at a newer cut (scratch is re-sized for the
  /// grown vertex space).  Cheap when the vertex count is unchanged.
  void set_cut(std::shared_ptr<const ShardedCut> cut);

  /// Samples one mini-batch for the given seed vertices against the
  /// current cut.
  MiniBatch sample(const std::vector<VertexId>& seeds);

  void reseed(std::uint64_t seed) { stream_ = seed; }

  const ShardedCut& cut() const { return *cut_; }
  const std::vector<int>& fanouts() const { return fanouts_; }

 private:
  struct Frontier {
    std::vector<VertexId> nodes;
    LayerBlock block;
  };
  Frontier expand(const std::vector<VertexId>& dst, int fanout);

  std::shared_ptr<const ShardedCut> cut_;
  std::vector<int> fanouts_;
  std::uint64_t stream_;
  std::vector<std::int64_t> local_of_;  ///< scratch: global -> local (+1), 0 = absent
  std::vector<VertexId> touched_;       ///< scratch: which entries of local_of_ are set
  std::vector<VertexId> combined_;      ///< scratch: one vertex's owner-shard adjacency
};

/// Full-neighborhood (exact) computation graph over a cut; the sharded
/// analogue of sample_full_overlay.  The take-everything fanout is the
/// cut's max-degree bound — any bound >= every live degree produces the
/// identical batch, so the flat and sharded exact paths agree even
/// though their bounds may differ.
MiniBatch sample_full_sharded(const ShardedCut& cut, const std::vector<VertexId>& seeds,
                              int num_layers);

}  // namespace hyscale
