// GraphSAGE neighbor sampler over a cross-shard cut.
//
// The view-type twin of stream/OverlaySampler with the read surface
// swapped from one GraphVersion to a ShardedCut: every vertex's live
// adjacency and degree are read through its OWNER shard's frozen
// version, which holds the vertex's complete adjacency (the facade
// routes every edge op to both endpoint owners).  The RNG stream
// discipline, partial Fisher-Yates, dst-prefix layout and degree
// reporting are shared with OverlaySampler — both are thin typed
// wrappers over the single FanoutSamplerCore in
// sampling/fanout_core.hpp — so with the same fanouts and seed the
// produced MiniBatch is BIT-IDENTICAL to OverlaySampler over a flat
// StreamingGraph holding the same logical state — the invariant the
// N-shard differential harness asserts at every adopted cut.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sampling/fanout_core.hpp"
#include "sampling/minibatch.hpp"
#include "shard/sharded_graph.hpp"

namespace hyscale {

class ShardedSampler : public FanoutSamplerCore<ShardedCut> {
 public:
  /// `fanouts` ordered input-layer first, like NeighborSampler.
  ShardedSampler(std::shared_ptr<const ShardedCut> cut, std::vector<int> fanouts,
                 std::uint64_t seed)
      : FanoutSamplerCore(std::move(cut), std::move(fanouts), seed,
                          {"ShardedSampler", "set_cut", "cut"}) {}

  /// Points the sampler at a newer cut (scratch is re-sized for the
  /// grown vertex space).  Cheap when the vertex count is unchanged.
  void set_cut(std::shared_ptr<const ShardedCut> cut) { set_view(std::move(cut)); }

  const ShardedCut& cut() const { return view(); }
};

/// Full-neighborhood (exact) computation graph over a cut; the sharded
/// analogue of sample_full_overlay.  The take-everything fanout is the
/// cut's max-degree bound — any bound >= every live degree produces the
/// identical batch, so the flat and sharded exact paths agree even
/// though their bounds may differ.
MiniBatch sample_full_sharded(const ShardedCut& cut, const std::vector<VertexId>& seeds,
                              int num_layers);

}  // namespace hyscale
