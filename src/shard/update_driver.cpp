#include "shard/update_driver.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"

namespace hyscale {

ShardedUpdateDriver::ShardedUpdateDriver(ShardedStreamingGraph& graph,
                                         UpdateGeneratorConfig config)
    : graph_(graph), config_(config) {
  if (config_.operations < 0)
    throw std::invalid_argument("ShardedUpdateDriver: negative operations");
  if (config_.num_threads < 1)
    throw std::invalid_argument("ShardedUpdateDriver: num_threads must be >= 1");
  if (config_.edges_per_op < 1)
    throw std::invalid_argument("ShardedUpdateDriver: edges_per_op must be >= 1");
  const double fractions = config_.vertex_add_fraction + config_.vertex_delete_fraction +
                           config_.feature_update_fraction + config_.edge_delete_fraction;
  if (config_.vertex_add_fraction < 0.0 || config_.vertex_delete_fraction < 0.0 ||
      config_.feature_update_fraction < 0.0 || config_.edge_delete_fraction < 0.0 ||
      fractions > 1.0)
    throw std::invalid_argument(
        "ShardedUpdateDriver: op fractions must be >= 0 and sum to <= 1");
  if (config_.delete_recent_fraction < 0.0 || config_.delete_recent_fraction > 1.0)
    throw std::invalid_argument(
        "ShardedUpdateDriver: delete_recent_fraction must be in [0, 1]");
}

UpdateReport ShardedUpdateDriver::run() {
  const std::int64_t cols = graph_.shard(0).features().cols();
  const VertexId dataset_vertices = graph_.dataset().graph.num_vertices();
  std::atomic<std::int64_t> completed_ops{0};

  // Same convention as UpdateGenerator: the facade's counters are the
  // source of truth and the report is the delta over this run.
  const ShardedStats before = graph_.stats();
  Timer wall;
  auto worker = [&](int t, std::int64_t ops) {
    Xoshiro256 rng(config_.seed + static_cast<std::uint64_t>(t) * 0x9e3779b97f4a7c15ULL);
    std::vector<float> row(static_cast<std::size_t>(cols));
    std::vector<VertexId> adjacency;
    constexpr std::size_t kRecentCap = 64;
    std::vector<std::pair<VertexId, VertexId>> recent;
    std::size_t recent_cursor = 0;
    auto note_insert = [&](VertexId a, VertexId b) {
      if (recent.size() < kRecentCap) {
        recent.emplace_back(a, b);
      } else {
        recent[recent_cursor] = {a, b};
        recent_cursor = (recent_cursor + 1) % kRecentCap;
      }
    };
    for (std::int64_t op = 0; op < ops; ++op) {
      double kind = rng.uniform();
      const VertexId n = graph_.num_vertices();
      const double add_cut = config_.vertex_add_fraction;
      const double vdel_cut = add_cut + config_.vertex_delete_fraction;
      const double feat_cut = vdel_cut + config_.feature_update_fraction;
      const double edel_cut = feat_cut + config_.edge_delete_fraction;
      if (kind < vdel_cut && kind >= add_cut && n <= dataset_vertices) {
        kind = edel_cut;  // no streamed-in vertex to retire yet: insert instead
      }
      if (kind < add_cut) {
        for (float& x : row) x = static_cast<float>(rng.normal());
        const VertexId v = graph_.add_vertex(row);
        for (int e = 0; e < config_.edges_per_new_vertex; ++e) {
          graph_.add_edge(v, static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n))));
        }
      } else if (kind < vdel_cut) {
        const auto span = static_cast<std::uint64_t>(n - dataset_vertices);
        graph_.remove_vertex(dataset_vertices + static_cast<VertexId>(rng.bounded(span)));
      } else if (kind < feat_cut) {
        const auto v = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
        for (float& x : row) x = static_cast<float>(rng.normal());
        graph_.update_feature(v, row);
      } else if (kind < edel_cut) {
        if (!recent.empty() && rng.uniform() < config_.delete_recent_fraction) {
          const auto pick = rng.bounded(static_cast<std::uint64_t>(recent.size()));
          const auto [a, b] = recent[static_cast<std::size_t>(pick)];
          graph_.remove_edge(a, b);
        } else {
          // Retract a live edge of a random vertex per the latest
          // ADOPTED cut; racing an unpublished retraction just lands in
          // rejected_removals.
          const auto cut = graph_.current_cut();
          const auto u = static_cast<VertexId>(
              rng.bounded(static_cast<std::uint64_t>(cut->num_vertices())));
          adjacency.clear();
          cut->append_neighbors(u, adjacency);
          if (!adjacency.empty()) {
            const auto pick = rng.bounded(static_cast<std::uint64_t>(adjacency.size()));
            graph_.remove_edge(u, adjacency[static_cast<std::size_t>(pick)]);
          }
        }
      } else {
        for (int e = 0; e < config_.edges_per_op; ++e) {
          const auto u = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
          const auto v = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
          if (graph_.add_edge(u, v)) note_insert(u, v);
        }
      }
      // Cadence counts ATTEMPTED ops, like UpdateGenerator — rejection
      // storms cannot starve visibility.
      const std::int64_t done = completed_ops.fetch_add(1, std::memory_order_relaxed) + 1;
      if (config_.publish_every > 0 && done % config_.publish_every == 0) {
        graph_.publish_all();
      }
      if (config_.pacing > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(config_.pacing));
      }
    }
  };

  std::vector<std::thread> threads;
  const std::int64_t per_thread = config_.operations / config_.num_threads;
  const std::int64_t remainder = config_.operations % config_.num_threads;
  for (int t = 0; t < config_.num_threads; ++t) {
    const std::int64_t ops = per_thread + (t < remainder ? 1 : 0);
    threads.emplace_back(worker, t, ops);
  }
  for (auto& thread : threads) thread.join();

  // Final publish + adoption so every accepted update is query-visible.
  graph_.publish_all();

  const ShardedStats after = graph_.stats();
  UpdateReport report;
  report.wall_time = wall.elapsed();
  report.operations = config_.operations;
  report.accepted_edges = after.ingested_edges - before.ingested_edges;
  report.duplicate_edges = after.duplicate_edges - before.duplicate_edges;
  report.removed_edges = after.removed_edges - before.removed_edges;
  report.rejected_removals = after.rejected_removals - before.rejected_removals;
  report.added_vertices = after.added_vertices - before.added_vertices;
  report.removed_vertices = after.removed_vertices - before.removed_vertices;
  report.recycled_vertices = 0;  // recycling is off in sharded mode
  report.feature_updates = after.feature_updates - before.feature_updates;
  report.publishes = after.cut_adoptions - before.cut_adoptions;
  report.edges_per_second =
      report.wall_time > 0.0
          ? static_cast<double>(report.accepted_edges + report.removed_edges) / report.wall_time
          : 0.0;
  if (Telemetry* telemetry = graph_.telemetry(); telemetry != nullptr) {
    MetricsRegistry& reg = telemetry->registry();
    reg.counter("ingest.operations").add(report.operations);
    reg.gauge("ingest.wall_seconds").set(report.wall_time);
    reg.gauge("ingest.edges_per_second").set(report.edges_per_second);
  }
  return report;
}

}  // namespace hyscale
