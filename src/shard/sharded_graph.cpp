#include "shard/sharded_graph.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace hyscale {

ShardedCut::ShardedCut(std::shared_ptr<const ShardOwnerMap> owners,
                       std::vector<std::shared_ptr<const GraphVersion>> versions,
                       std::uint64_t cut_id)
    : owners_(std::move(owners)), versions_(std::move(versions)), cut_id_(cut_id) {
  if (!owners_) throw std::invalid_argument("ShardedCut: null owner map");
  if (versions_.size() != static_cast<std::size_t>(owners_->num_shards()))
    throw std::invalid_argument("ShardedCut: one version per shard required");
  for (const auto& version : versions_) {
    if (!version) throw std::invalid_argument("ShardedCut: null shard version");
    num_vertices_ = std::max(num_vertices_, version->num_vertices());
    max_degree_ = std::max(max_degree_, version->max_degree());
  }
}

namespace {

/// Shard s's base adjacency: every directed edge (v, u) with
/// owner(v) == s or owner(u) == s, in the dataset's (sorted) order —
/// so an owned vertex's rows are element-identical to the flat CSR's.
CsrGraph filter_owner_incident(const CsrGraph& graph, const std::vector<int>& assignment,
                               int shard) {
  const VertexId n = graph.num_vertices();
  std::vector<EdgeId> indptr;
  indptr.reserve(static_cast<std::size_t>(n) + 1);
  indptr.push_back(0);
  std::vector<VertexId> indices;
  for (VertexId v = 0; v < n; ++v) {
    const bool owned = assignment[static_cast<std::size_t>(v)] == shard;
    for (VertexId u : graph.neighbors(v)) {
      if (owned || assignment[static_cast<std::size_t>(u)] == shard) indices.push_back(u);
    }
    indptr.push_back(static_cast<EdgeId>(indices.size()));
  }
  return CsrGraph(std::move(indptr), std::move(indices));
}

}  // namespace

ShardedStreamingGraph::ShardedStreamingGraph(const Dataset& dataset, ShardedConfig config)
    : dataset_(&dataset), config_(std::move(config)) {
  if (config_.num_shards < 1)
    throw std::invalid_argument("ShardedStreamingGraph: num_shards must be >= 1");
  if (!config_.stream.symmetric)
    throw std::invalid_argument(
        "ShardedStreamingGraph: per-shard graphs must be symmetric (edge routing "
        "relies on both directions landing in both endpoint owners)");

  partition_ = config_.partitioner == ShardedConfig::Partitioner::kBfs
                   ? partition_bfs(dataset.graph, config_.num_shards, config_.partition_seed)
                   : partition_hash(dataset.graph, config_.num_shards, config_.partition_seed);
  owners_ = std::make_shared<const ShardOwnerMap>(partition_.assignment, config_.num_shards,
                                                  config_.partition_seed);

  shard_datasets_.reserve(static_cast<std::size_t>(config_.num_shards));
  for (int s = 0; s < config_.num_shards; ++s) {
    Dataset view;
    view.info = dataset.info;
    view.info.name += "/shard" + std::to_string(s);
    view.graph = filter_owner_incident(dataset.graph, partition_.assignment, s);
    view.features = dataset.features;  // full copy: every shard mirrors every row
    view.labels = dataset.labels;
    view.train_ids = dataset.train_ids;
    shard_datasets_.push_back(std::move(view));
  }

  shards_.reserve(static_cast<std::size_t>(config_.num_shards));
  for (int s = 0; s < config_.num_shards; ++s) {
    StreamingConfig shard_config = config_.stream;
    shard_config.recycle_ids = false;  // lockstep vertex spaces, see header
    shard_config.metric_prefix = "shard" + std::to_string(s) + ".";
    shards_.push_back(std::make_unique<StreamingGraph>(
        shard_datasets_[static_cast<std::size_t>(s)], shard_config));
  }

  bind_telemetry();
  adopt();  // cut 1: the construction-time version vector
}

ShardedStreamingGraph::~ShardedStreamingGraph() {
  if (config_.stream.telemetry != nullptr) config_.stream.telemetry->registry().detach(this);
}

void ShardedStreamingGraph::bind_telemetry() {
  Telemetry* telemetry = config_.stream.telemetry;
  if (telemetry == nullptr) return;
  auto& registry = telemetry->registry();
  tracer_ = &telemetry->tracer();
  journal_ = &telemetry->journal();
  m_adoptions_ = &registry.counter("sharded.cut_adoptions");
  m_refreshed_ = &registry.counter("sharded.halo_refreshed_rows");
  m_halo_hits_ = &registry.counter("sharded.halo_hits");
  m_cross_rows_ = &registry.counter("sharded.cross_shard_rows");
  registry.gauge("sharded.num_shards").set(static_cast<double>(num_shards()));
  registry.gauge("sharded.edge_cut_fraction")
      .set(partition_.edge_cut_fraction(dataset_->graph.num_edges()));
  registry.gauge("sharded.imbalance").set(partition_.imbalance());
  registry.register_callback("sharded.dirty_rows", this,
                             [this] { return static_cast<double>(dirty_rows()); });
  registry.register_callback("sharded.cut_id", this, [this] {
    const auto cut = current_cut();
    return cut == nullptr ? 0.0 : static_cast<double>(cut->cut_id());
  });
  // Logical op counters (each op counted ONCE regardless of how many
  // shards applied it) — the per-shard stream.* counters double-book
  // cross-shard edges, so record builders must read these instead.
  const auto logical = [&](const char* name, std::atomic<std::int64_t>& counter) {
    registry.register_callback(name, this, [&counter] {
      return static_cast<double>(counter.load(std::memory_order_relaxed));
    });
  };
  logical("sharded.ingested_edges", ingested_edges_);
  logical("sharded.duplicate_edges", duplicate_edges_);
  logical("sharded.removed_edges", removed_edges_);
  logical("sharded.rejected_removals", rejected_removals_);
  logical("sharded.added_vertices", added_vertices_);
  logical("sharded.removed_vertices", removed_vertices_);
  logical("sharded.feature_updates", feature_updates_);
  logical("sharded.expired_vertices", expired_vertices_);
}

std::mutex& ShardedStreamingGraph::edge_stripe(VertexId u, VertexId v) const {
  const VertexId lo = u < v ? u : v;
  const VertexId hi = u < v ? v : u;
  std::uint64_t h = (static_cast<std::uint64_t>(lo) << 21) ^ static_cast<std::uint64_t>(hi);
  return edge_stripes_[splitmix64(h) % kEdgeStripes];
}

bool ShardedStreamingGraph::add_edge(VertexId u, VertexId v) {
  std::shared_lock topology(topology_mutex_);
  std::lock_guard stripe(edge_stripe(u, v));
  const int su = owners_->owner(u);
  const int sv = owners_->owner(v);
  const bool accepted = shards_[static_cast<std::size_t>(su)]->add_edge(u, v);
  if (sv != su) {
    // Both owners saw every prior op on {u, v} (this stripe serializes
    // them) and share the dead-vertex state (broadcast), so the second
    // owner's verdict always matches the first.
    shards_[static_cast<std::size_t>(sv)]->add_edge(u, v);
  }
  if (accepted) {
    ingested_edges_.fetch_add(2, std::memory_order_relaxed);
  } else {
    duplicate_edges_.fetch_add(1, std::memory_order_relaxed);
  }
  return accepted;
}

bool ShardedStreamingGraph::remove_edge(VertexId u, VertexId v) {
  std::shared_lock topology(topology_mutex_);
  std::lock_guard stripe(edge_stripe(u, v));
  const int su = owners_->owner(u);
  const int sv = owners_->owner(v);
  const bool accepted = shards_[static_cast<std::size_t>(su)]->remove_edge(u, v);
  if (sv != su) shards_[static_cast<std::size_t>(sv)]->remove_edge(u, v);
  if (accepted) {
    removed_edges_.fetch_add(2, std::memory_order_relaxed);
  } else {
    rejected_removals_.fetch_add(1, std::memory_order_relaxed);
  }
  return accepted;
}

VertexId ShardedStreamingGraph::add_vertex(std::span<const float> features) {
  std::unique_lock topology(topology_mutex_);
  VertexId id = -1;
  for (auto& shard : shards_) {
    const VertexId got = shard->add_vertex(features);
    if (id == -1) {
      id = got;
    } else if (got != id) {
      // Unreachable while recycling is off and every add/remove is
      // broadcast; a divergence here would silently corrupt routing.
      throw std::logic_error("ShardedStreamingGraph: shard vertex spaces diverged");
    }
  }
  added_vertices_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

bool ShardedStreamingGraph::remove_vertex(VertexId v) {
  std::unique_lock topology(topology_mutex_);
  // The OWNER shard holds v's complete adjacency, so its removed-edge
  // delta over the broadcast is the logical count of directed edges
  // this retirement retracted (the other shards drop subsets of the
  // same edges — counting them too would double-book).
  const int o = owners_->owner(v);
  const std::int64_t owner_removed_before =
      shards_[static_cast<std::size_t>(o)]->stats().removed_edges;
  bool removed = false;
  bool first = true;
  for (auto& shard : shards_) {
    const bool got = shard->remove_vertex(v);
    if (first) {
      removed = got;
      first = false;
    }
  }
  if (removed) {
    removed_vertices_.fetch_add(1, std::memory_order_relaxed);
    removed_edges_.fetch_add(
        shards_[static_cast<std::size_t>(o)]->stats().removed_edges - owner_removed_before,
        std::memory_order_relaxed);
    std::lock_guard dirty_lock(dirty_mutex_);
    dirty_.erase(v);  // every mirror is zeroed now; nothing left to refresh
  }
  return removed;
}

bool ShardedStreamingGraph::update_feature(VertexId v, std::span<const float> values) {
  std::shared_lock topology(topology_mutex_);
  const int o = owners_->owner(v);
  const bool accepted = shards_[static_cast<std::size_t>(o)]->update_feature(v, values);
  if (accepted) {
    feature_updates_.fetch_add(1, std::memory_order_relaxed);
    if (shards_.size() > 1) {
      std::lock_guard dirty_lock(dirty_mutex_);
      dirty_.insert(v);
    }
  }
  return accepted;
}

std::shared_ptr<const ShardedCut> ShardedStreamingGraph::publish_all() {
  for (auto& shard : shards_) shard->publish();
  return adopt();
}

std::shared_ptr<const ShardedCut> ShardedStreamingGraph::adopt() {
  std::lock_guard serialize(adopt_mutex_);

  std::vector<std::shared_ptr<const GraphVersion>> versions;
  versions.reserve(shards_.size());
  for (const auto& shard : shards_) versions.push_back(shard->current());

  bool have_dirty;
  {
    std::lock_guard dirty_lock(dirty_mutex_);
    have_dirty = !dirty_.empty();
  }
  {
    std::lock_guard cut_lock(cut_mutex_);
    if (current_cut_ != nullptr && !have_dirty) {
      bool unchanged = true;
      for (int s = 0; s < num_shards(); ++s) {
        if (current_cut_->shard_version_ptr(s) != versions[static_cast<std::size_t>(s)]) {
          unchanged = false;
          break;
        }
      }
      if (unchanged) return current_cut_;
    }
  }

  const std::int64_t begin_ns = tracer_ != nullptr ? StageTracer::now_ns() : 0;

  // Halo refresh: bring every non-owner mirror of a dirty vertex up to
  // the owner's row.  Ascending id order keeps the pass deterministic.
  std::vector<VertexId> dirty;
  {
    std::lock_guard dirty_lock(dirty_mutex_);
    dirty.assign(dirty_.begin(), dirty_.end());
    dirty_.clear();
  }
  std::sort(dirty.begin(), dirty.end());
  std::int64_t refreshed = 0;
  if (!dirty.empty() && shards_.size() > 1) {
    std::vector<float> row(static_cast<std::size_t>(shards_.front()->features().cols()));
    for (VertexId v : dirty) {
      const int o = owners_->owner(v);
      shards_[static_cast<std::size_t>(o)]->features().copy_row(v, row);
      for (int s = 0; s < num_shards(); ++s) {
        if (s == o) continue;
        shards_[static_cast<std::size_t>(s)]->refresh_mirror_row(v, row);
        ++refreshed;
      }
    }
  }

  const auto cut = std::make_shared<const ShardedCut>(
      owners_, std::move(versions), cut_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
  {
    std::lock_guard cut_lock(cut_mutex_);
    current_cut_ = cut;
  }
  cut_adoptions_.fetch_add(1, std::memory_order_relaxed);
  halo_refreshed_rows_.fetch_add(refreshed, std::memory_order_relaxed);
  if (m_adoptions_ != nullptr) m_adoptions_->add(1);
  if (m_refreshed_ != nullptr && refreshed > 0) m_refreshed_->add(refreshed);
  if (tracer_ != nullptr) {
    tracer_->record(TraceStage::kAdopt, cut->cut_id(), static_cast<std::uint64_t>(refreshed),
                    begin_ns, StageTracer::now_ns());
  }
  if (journal_ != nullptr) {
    journal_->log("adopt", "cut=" + std::to_string(cut->cut_id()) +
                               " refreshed_rows=" + std::to_string(refreshed));
  }
  return cut;
}

std::shared_ptr<const ShardedCut> ShardedStreamingGraph::current_cut() const {
  std::lock_guard cut_lock(cut_mutex_);
  return current_cut_;
}

bool ShardedStreamingGraph::cut_stale() const {
  {
    std::lock_guard dirty_lock(dirty_mutex_);
    if (!dirty_.empty()) return true;
  }
  const auto cut = current_cut();
  for (int s = 0; s < num_shards(); ++s) {
    if (cut->shard_version_ptr(s) != shards_[static_cast<std::size_t>(s)]->current())
      return true;
  }
  return false;
}

StaticFeatureCache::LoadStats ShardedStreamingGraph::gather(
    int home_shard, std::span<const VertexId> nodes, Tensor& out,
    std::vector<char>& hit_scratch) const {
  auto stats = shards_[static_cast<std::size_t>(home_shard)]->gather(nodes, out, hit_scratch);
  if (shards_.size() == 1) return stats;

  // Remote rows: fresh mirrors (halo hits) are already correct in
  // `out`; rows still dirty since the last adopt are overwritten
  // straight from their owner's store — at the owner's wire precision,
  // so the served values match what the flat graph's store would emit.
  thread_local std::vector<VertexId> stale_nodes;
  thread_local std::vector<std::int64_t> stale_rows;
  stale_nodes.clear();
  stale_rows.clear();
  std::int64_t remote = 0;
  {
    std::lock_guard dirty_lock(dirty_mutex_);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const VertexId v = nodes[i];
      if (owners_->owner(v) == home_shard) continue;
      ++remote;
      if (dirty_.count(v) != 0) {
        stale_nodes.push_back(v);
        stale_rows.push_back(static_cast<std::int64_t>(i));
      }
    }
  }
  if (remote == 0) return stats;
  const auto stale = static_cast<std::int64_t>(stale_nodes.size());
  halo_hits_.fetch_add(remote - stale, std::memory_order_relaxed);
  cross_shard_rows_.fetch_add(stale, std::memory_order_relaxed);
  if (m_halo_hits_ != nullptr && remote > stale) m_halo_hits_->add(remote - stale);
  if (m_cross_rows_ != nullptr && stale > 0) m_cross_rows_->add(stale);
  if (stale == 0) return stats;

  thread_local std::vector<VertexId> owner_batch;
  thread_local std::vector<std::int64_t> owner_rows;
  thread_local Tensor fetched;
  const std::int64_t cols = out.cols();
  for (int s = 0; s < num_shards(); ++s) {
    if (s == home_shard) continue;
    owner_batch.clear();
    owner_rows.clear();
    for (std::size_t k = 0; k < stale_nodes.size(); ++k) {
      if (owners_->owner(stale_nodes[k]) == s) {
        owner_batch.push_back(stale_nodes[k]);
        owner_rows.push_back(stale_rows[k]);
      }
    }
    if (owner_batch.empty()) continue;
    fetched.resize(static_cast<std::int64_t>(owner_batch.size()), cols);
    shards_[static_cast<std::size_t>(s)]->features().gather(owner_batch, fetched);
    for (std::size_t j = 0; j < owner_batch.size(); ++j) {
      const auto src = fetched.row(static_cast<std::int64_t>(j));
      const auto dst = out.row(owner_rows[j]);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  return stats;
}

void ShardedStreamingGraph::rerank_all() {
  for (auto& shard : shards_) shard->rerank_now();
}

std::int64_t ShardedStreamingGraph::sweep_expired(Seconds ttl, std::int64_t max_retire,
                                                  EdgeId pending_op_budget) {
  if (max_retire <= 0) return 0;
  const auto ttl_ns = static_cast<std::int64_t>(ttl * 1e9);
  const std::int64_t now = MutableFeatureStore::now_ns();
  const VertexId first_streamed = dataset_->graph.num_vertices();
  const VertexId n = num_vertices();
  std::int64_t retired = 0;
  for (VertexId v = first_streamed; v < n && retired < max_retire; ++v) {
    if (pending_op_budget > 0) {
      EdgeId busiest = 0;
      for (const auto& shard : shards_)
        busiest = std::max(busiest, shard->overlay_ops());
      if (busiest >= pending_op_budget) break;
    }
    // A vertex read-hot through ANY home shard stays alive: the
    // effective last touch is the max across all shard stores.
    std::int64_t last = 0;
    for (const auto& shard : shards_)
      last = std::max(last, shard->features().last_touch_ns(v));
    if (now - last <= ttl_ns) continue;
    if (remove_vertex(v)) {
      ++retired;
      expired_vertices_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return retired;
}

std::int64_t ShardedStreamingGraph::dirty_rows() const {
  std::lock_guard dirty_lock(dirty_mutex_);
  return static_cast<std::int64_t>(dirty_.size());
}

ShardedStats ShardedStreamingGraph::stats() const {
  ShardedStats stats;
  stats.ingested_edges = ingested_edges_.load(std::memory_order_relaxed);
  stats.duplicate_edges = duplicate_edges_.load(std::memory_order_relaxed);
  stats.removed_edges = removed_edges_.load(std::memory_order_relaxed);
  stats.rejected_removals = rejected_removals_.load(std::memory_order_relaxed);
  stats.added_vertices = added_vertices_.load(std::memory_order_relaxed);
  stats.removed_vertices = removed_vertices_.load(std::memory_order_relaxed);
  stats.feature_updates = feature_updates_.load(std::memory_order_relaxed);
  stats.expired_vertices = expired_vertices_.load(std::memory_order_relaxed);
  stats.cut_adoptions = cut_adoptions_.load(std::memory_order_relaxed);
  stats.halo_refreshed_rows = halo_refreshed_rows_.load(std::memory_order_relaxed);
  stats.halo_hits = halo_hits_.load(std::memory_order_relaxed);
  stats.cross_shard_rows = cross_shard_rows_.load(std::memory_order_relaxed);
  stats.dirty_rows = dirty_rows();
  const auto cut = current_cut();
  stats.cut_id = cut == nullptr ? 0 : cut->cut_id();
  return stats;
}

std::string ShardedStats::to_string() const {
  std::ostringstream out;
  out << "cut=" << cut_id << " adoptions=" << cut_adoptions
      << " edges(in=" << ingested_edges << " dup=" << duplicate_edges
      << " rm=" << removed_edges << " rej=" << rejected_removals << ")"
      << " vertices(add=" << added_vertices << " rm=" << removed_vertices
      << " expired=" << expired_vertices << ")"
      << " features(updates=" << feature_updates << " dirty=" << dirty_rows
      << " refreshed=" << halo_refreshed_rows << ")"
      << " halo(hits=" << halo_hits << " cross_fetch=" << cross_shard_rows << ")";
  return out.str();
}

}  // namespace hyscale
