// Sharded streaming serving: N partition-routed StreamingGraph shards
// behind one facade, with a halo feature plane and a consistent
// cross-shard cut.
//
// This is the repository's stand-in for the multi-node serving tier the
// paper's §VII baselines (P3, DistDGL) run — built so the costs HyScale
// avoids (halo feature traffic, cross-shard consistency) can be
// MEASURED against the same workloads instead of modeled.  Vertices are
// assigned to shards by a Partition (hash or BFS-grown, graph/partition)
// plus a seeded hash for vertices streamed in later; every shard is a
// full StreamingGraph (its own DeltaStore, MutableFeatureStore,
// Compactor and Publisher — all reused unchanged) over the FULL vertex
// space, holding every directed edge incident to a vertex it owns.
//
// The bit-identity contract (PR 3's standard) survives sharding by
// construction, not by luck:
//
//   * TOPOLOGY — shard s's base CSR keeps directed edge (a, b) iff
//     owner(a) == s or owner(b) == s, and every streamed edge op is
//     routed to BOTH endpoint owners.  Owner(v)'s shard therefore holds
//     v's COMPLETE live adjacency, element-identical to the flat
//     graph's, so a sampler that reads every vertex through its owner
//     shard draws bit-identical neighborhoods.
//   * VERTEX SPACE — vertex adds/removes are broadcast to every shard
//     under an exclusive lock, with id recycling disabled
//     (StreamingConfig::recycle_ids = false), so all shards agree on
//     ids and liveness at every instant.
//   * FEATURES — every shard carries a full feature copy.  A feature
//     update writes the OWNER's row immediately and marks the vertex
//     dirty; non-owner mirrors catch up at the next cut adoption (halo
//     refresh).  Gathers run against one "home" shard and overlay the
//     still-dirty remote rows straight from their owners' stores — at
//     the owners' wire precision, so int8 serving stays bit-identical
//     to the flat graph's int8 gather.
//
// CONSISTENT CUT — queries never read shards_[s]->current() directly.
// adopt() freezes a version VECTOR (one published GraphVersion per
// shard), refreshes the dirty halo mirrors, and installs the result as
// an immutable ShardedCut; a shard's publish becomes visible to queries
// only once a cut containing it is adopted.  Cut ids are monotone, so
// every query is served from one frozen vector — never a torn mix of
// old shard A and new shard B state mid-read.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "graph/partition.hpp"
#include "stream/streaming_graph.hpp"

namespace hyscale {

/// Vertex -> shard assignment: the base partition for dataset vertices,
/// a seeded hash for vertices streamed in later (every shard computes
/// the same owner without coordination).  Immutable and shared between
/// the facade and every ShardedCut it publishes.
class ShardOwnerMap {
 public:
  ShardOwnerMap(std::vector<int> base_assignment, int num_shards,
                std::uint64_t stream_seed)
      : base_assignment_(std::move(base_assignment)),
        num_shards_(num_shards),
        stream_seed_(stream_seed) {}

  int owner(VertexId v) const {
    if (static_cast<std::size_t>(v) < base_assignment_.size())
      return base_assignment_[static_cast<std::size_t>(v)];
    std::uint64_t h = stream_seed_ ^ static_cast<std::uint64_t>(v);
    return static_cast<int>(splitmix64(h) % static_cast<std::uint64_t>(num_shards_));
  }
  int num_shards() const { return num_shards_; }
  VertexId base_vertices() const { return static_cast<VertexId>(base_assignment_.size()); }

 private:
  std::vector<int> base_assignment_;
  int num_shards_;
  std::uint64_t stream_seed_;
};

/// Immutable cross-shard snapshot: one published GraphVersion per shard,
/// frozen together.  All methods are const and safe for concurrent
/// readers; the hot-path accessors route each vertex to its OWNER
/// shard's version, which holds the vertex's complete live adjacency.
class ShardedCut {
 public:
  ShardedCut(std::shared_ptr<const ShardOwnerMap> owners,
             std::vector<std::shared_ptr<const GraphVersion>> versions,
             std::uint64_t cut_id);

  int num_shards() const { return owners_->num_shards(); }
  int owner(VertexId v) const { return owners_->owner(v); }
  std::uint64_t cut_id() const { return cut_id_; }

  const GraphVersion& shard_version(int shard) const {
    return *versions_[static_cast<std::size_t>(shard)];
  }
  const std::shared_ptr<const GraphVersion>& shard_version_ptr(int shard) const {
    return versions_[static_cast<std::size_t>(shard)];
  }
  std::uint64_t version_id(int shard) const {
    return versions_[static_cast<std::size_t>(shard)]->id();
  }

  /// Max over the shard versions (shards publish independently, so a
  /// vertex added between two shards' publishes exists in some versions
  /// only; GraphVersion treats out-of-range ids as degree-0 and alive,
  /// so reads through an older member stay well-defined).
  VertexId num_vertices() const { return num_vertices_; }
  /// Upper bound on the live max degree across shards — what the exact
  /// (full-neighborhood) sampler uses as its take-everything fanout.
  EdgeId max_degree() const { return max_degree_; }

  // ---- owner-routed hot path (the sampler's read surface) ----

  EdgeId degree(VertexId v) const { return version_of(v).degree(v); }
  void append_neighbors(VertexId v, std::vector<VertexId>& out) const {
    version_of(v).append_neighbors(v, out);
  }
  bool alive(VertexId v) const { return version_of(v).alive(v); }

 private:
  const GraphVersion& version_of(VertexId v) const {
    return *versions_[static_cast<std::size_t>(owners_->owner(v))];
  }

  std::shared_ptr<const ShardOwnerMap> owners_;
  std::vector<std::shared_ptr<const GraphVersion>> versions_;
  std::uint64_t cut_id_ = 0;
  VertexId num_vertices_ = 0;
  EdgeId max_degree_ = 0;
};

struct ShardedConfig {
  int num_shards = 2;
  enum class Partitioner { kHash, kBfs };
  Partitioner partitioner = Partitioner::kHash;
  /// Seeds both the base partitioner and the streamed-in owner hash.
  std::uint64_t partition_seed = 17;
  /// Template for every per-shard StreamingGraph.  `symmetric` must stay
  /// true (edge routing relies on both directions landing in both
  /// endpoint owners); `recycle_ids` is forced off and `metric_prefix`
  /// is overwritten with "shard<i>." per shard.
  StreamingConfig stream;
};

/// Facade-level logical counters (each op counted ONCE, however many
/// shards it touched) plus the cross-shard instruments.
struct ShardedStats {
  std::int64_t ingested_edges = 0;     ///< accepted directed insertions
  std::int64_t duplicate_edges = 0;
  std::int64_t removed_edges = 0;      ///< accepted directed retractions
  std::int64_t rejected_removals = 0;
  std::int64_t added_vertices = 0;
  std::int64_t removed_vertices = 0;
  std::int64_t feature_updates = 0;
  std::int64_t expired_vertices = 0;
  std::int64_t cut_adoptions = 0;
  std::int64_t halo_refreshed_rows = 0;  ///< mirror rows refreshed at adoption
  std::int64_t halo_hits = 0;            ///< remote rows served from a fresh local mirror
  std::int64_t cross_shard_rows = 0;     ///< remote rows fetched from their owner (dirty)
  std::int64_t dirty_rows = 0;           ///< currently awaiting halo refresh
  std::uint64_t cut_id = 0;

  std::string to_string() const;
};

class ShardedStreamingGraph : public ExpiryTarget {
 public:
  /// Partitions `dataset` and builds one StreamingGraph per shard (full
  /// vertex space, owner-incident edges, full feature copy).  The
  /// dataset must outlive the facade.  Throws std::invalid_argument for
  /// num_shards < 1 or a non-symmetric stream config.
  ShardedStreamingGraph(const Dataset& dataset, ShardedConfig config);
  ~ShardedStreamingGraph();  ///< detaches the facade's callback gauges

  ShardedStreamingGraph(const ShardedStreamingGraph&) = delete;
  ShardedStreamingGraph& operator=(const ShardedStreamingGraph&) = delete;

  // ---- ingest (thread-safe; same contracts as StreamingGraph) ----

  /// Routes the edge to both endpoint owners under a per-edge stripe
  /// lock, so the two shards always agree on the edge's liveness.
  bool add_edge(VertexId u, VertexId v);
  bool remove_edge(VertexId u, VertexId v);

  /// Broadcast: every shard appends the SAME id (recycling is off, so
  /// the vertex spaces stay in lockstep).
  VertexId add_vertex(std::span<const float> features);
  /// Broadcast retirement: edges retracted and the row zeroed on every
  /// shard, so no mirror can serve a retracted entity.
  bool remove_vertex(VertexId v);

  /// Writes the OWNER shard's row (visible to home-shard gathers of
  /// that owner immediately) and marks the vertex dirty; every other
  /// shard's mirror catches up at the next adopt().  Until then,
  /// cross-shard gathers of the vertex fetch the owner's row directly.
  bool update_feature(VertexId v, std::span<const float> values);

  // ---- cuts ----

  /// Publishes every shard, then adopts.  The deterministic harness
  /// path: with ingest quiesced, the adopted cut is element-identical
  /// to a flat StreamingGraph publish of the same op sequence.
  std::shared_ptr<const ShardedCut> publish_all();

  /// Freezes the current per-shard version vector, refreshes dirty halo
  /// mirrors (owner row -> every other shard, skipping dead vertices),
  /// and installs the result as the new current cut.  Returns the
  /// installed (or unchanged, when nothing moved) cut.  Serialized
  /// internally; safe to call from the CutAdopter thread and tests
  /// concurrently.
  std::shared_ptr<const ShardedCut> adopt();

  /// The latest adopted cut.  Never null (the constructor adopts cut 1).
  std::shared_ptr<const ShardedCut> current_cut() const;

  /// True when some shard has published a version the current cut does
  /// not contain, or dirty halo rows await a refresh — the CutAdopter's
  /// poll predicate.
  bool cut_stale() const;

  // ---- feature plane ----

  /// Serving gather routed through `home_shard`: pinned rows from that
  /// shard's cache, the rest from its store, then any still-dirty
  /// remote row is overwritten straight from its owner's store at the
  /// owner's wire precision.  Counts halo hits (remote rows whose local
  /// mirror was fresh) vs cross-shard fetches.
  StaticFeatureCache::LoadStats gather(int home_shard, std::span<const VertexId> nodes,
                                       Tensor& out, std::vector<char>& hit_scratch) const;

  /// On-demand cache re-rank on every shard (the facade analogue of
  /// StreamingGraph::rerank_now, used by the serving tier's
  /// traffic-triggered cadence).
  void rerank_all();

  /// Facade TTL pass: retires streamed-in vertices (broadcast
  /// remove_vertex) whose feature row is idle on EVERY shard — the
  /// last-touch is the max across shards, so a vertex read-hot through
  /// any home shard stays alive.  Ascending id order; same pacing
  /// contract as StreamingGraph::sweep_expired (the budget is checked
  /// against the busiest shard's overlay).
  std::int64_t sweep_expired(Seconds ttl, std::int64_t max_retire,
                             EdgeId pending_op_budget = 0) override;

  // ---- accessors ----

  int num_shards() const { return static_cast<int>(shards_.size()); }
  StreamingGraph& shard(int s) { return *shards_[static_cast<std::size_t>(s)]; }
  const StreamingGraph& shard(int s) const { return *shards_[static_cast<std::size_t>(s)]; }
  int owner(VertexId v) const { return owners_->owner(v); }
  const Partition& partition() const { return partition_; }
  const Dataset& dataset() const { return *dataset_; }
  /// The dataset view shard `s` serves (filtered topology, full feature
  /// copy) — what the serving tier builds shard `s`'s device cache over.
  const Dataset& shard_dataset(int s) const { return shard_datasets_[static_cast<std::size_t>(s)]; }
  const ShardedConfig& config() const { return config_; }
  Telemetry* telemetry() const override { return config_.stream.telemetry; }
  const char* expiry_scope() const override { return "sharded"; }
  VertexId num_vertices() const { return shards_.front()->num_vertices(); }
  std::int64_t dirty_rows() const;
  ShardedStats stats() const;

 private:
  void bind_telemetry();
  std::mutex& edge_stripe(VertexId u, VertexId v) const;

  const Dataset* dataset_;
  ShardedConfig config_;
  Partition partition_;
  std::shared_ptr<const ShardOwnerMap> owners_;
  /// Per-shard dataset views; StreamingGraph references its dataset, so
  /// these must live exactly as long as the shards (declared first).
  std::vector<Dataset> shard_datasets_;
  std::vector<std::unique_ptr<StreamingGraph>> shards_;

  /// Vertex adds/removes exclusive, edge ops + feature updates shared —
  /// an edge op observes both endpoint owners' dead state atomically
  /// against a concurrent broadcast retirement.
  mutable std::shared_mutex topology_mutex_;
  /// Serializes the two owner-shard calls of one edge op against other
  /// ops on the SAME edge, so the shards can never disagree on an
  /// add/remove interleave.
  static constexpr std::size_t kEdgeStripes = 64;
  mutable std::mutex edge_stripes_[kEdgeStripes];

  mutable std::mutex dirty_mutex_;
  std::unordered_set<VertexId> dirty_;  ///< owner row newer than some mirror

  std::mutex adopt_mutex_;  ///< serializes adopt() bodies
  mutable std::mutex cut_mutex_;
  std::shared_ptr<const ShardedCut> current_cut_;
  std::atomic<std::uint64_t> cut_counter_{0};

  std::atomic<std::int64_t> ingested_edges_{0};
  std::atomic<std::int64_t> duplicate_edges_{0};
  std::atomic<std::int64_t> removed_edges_{0};
  std::atomic<std::int64_t> rejected_removals_{0};
  std::atomic<std::int64_t> added_vertices_{0};
  std::atomic<std::int64_t> removed_vertices_{0};
  std::atomic<std::int64_t> feature_updates_{0};
  std::atomic<std::int64_t> expired_vertices_{0};
  std::atomic<std::int64_t> cut_adoptions_{0};
  std::atomic<std::int64_t> halo_refreshed_rows_{0};
  mutable std::atomic<std::int64_t> halo_hits_{0};
  mutable std::atomic<std::int64_t> cross_shard_rows_{0};

  // Registry mirrors + tracer/journal; all null when telemetry is off.
  StageTracer* tracer_ = nullptr;
  EventJournal* journal_ = nullptr;
  Counter* m_adoptions_ = nullptr;
  Counter* m_refreshed_ = nullptr;
  Counter* m_halo_hits_ = nullptr;
  Counter* m_cross_rows_ = nullptr;
};

}  // namespace hyscale
