#include "shard/cut_adopter.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace hyscale {

CutAdopter::CutAdopter(ShardedStreamingGraph& graph, CutAdopterPolicy policy)
    : graph_(graph), policy_(policy) {
  if (policy_.poll_interval <= 0.0)
    throw std::invalid_argument("CutAdopter: poll_interval must be positive");
  if (Telemetry* telemetry = graph_.telemetry(); telemetry != nullptr) {
    // Busy time is one adopt (version snapshot + dirty-row refresh);
    // the poll interval is the natural beat hint.
    heart_ = &telemetry->heartbeats().register_thread(
        "sharded.adopter",
        std::max<std::int64_t>(static_cast<std::int64_t>(policy_.poll_interval * 1e9),
                               1'000'000));
  }
  thread_ = std::thread([this] { loop(); });
}

CutAdopter::~CutAdopter() { stop(); }

void CutAdopter::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void CutAdopter::loop() {
  std::unique_lock lock(mutex_);
  while (!stop_) {
    if (heart_ != nullptr) heart_->idle_enter();
    cv_.wait_for(lock, std::chrono::duration<double>(policy_.poll_interval),
                 [this] { return stop_; });
    if (heart_ != nullptr) heart_->idle_exit();
    if (stop_) break;
    if (!graph_.cut_stale()) continue;
    lock.unlock();
    const auto before = graph_.current_cut();
    const auto after = graph_.adopt();
    // adopt() returns the unchanged cut when a racing caller (a test's
    // publish_all) already advanced past what we saw; only count cuts
    // this thread actually installed.
    if (after != before) adoptions_.fetch_add(1, std::memory_order_relaxed);
    if (heart_ != nullptr) heart_->beat();
    lock.lock();
  }
  if (heart_ != nullptr) heart_->retire();
}

}  // namespace hyscale
