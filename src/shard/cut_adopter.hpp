// Background cut adopter: the router's version-vector advancer.
//
// Per-shard Publishers make each shard's ingest visible as per-shard
// GraphVersions, but queries only ever read an adopted ShardedCut — a
// shard's publish is invisible until a cut containing it is installed.
// The CutAdopter closes that gap: a background thread polls the facade
// and adopts whenever some shard has published past the current cut or
// dirty halo rows await a refresh, bounding cut staleness at roughly
// its poll interval on top of the per-shard publishers' SLO.  Idles
// (watchdog-visible) when nothing moved; adoption itself is serialized
// inside the facade, so a concurrent test-driven publish_all is safe.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/timer.hpp"
#include "shard/sharded_graph.hpp"

namespace hyscale {

struct CutAdopterPolicy {
  /// How often the adopter checks for newly published shard versions
  /// or pending halo refreshes.
  Seconds poll_interval = 1e-3;
};

class CutAdopter {
 public:
  /// `graph` must outlive the adopter.  The background thread starts
  /// immediately and stops (joined) on destruction or stop().
  explicit CutAdopter(ShardedStreamingGraph& graph, CutAdopterPolicy policy = {});
  ~CutAdopter();

  CutAdopter(const CutAdopter&) = delete;
  CutAdopter& operator=(const CutAdopter&) = delete;

  void stop();

  /// Cuts this thread installed (adoptions triggered elsewhere — e.g. a
  /// caller's publish_all — are not counted here; the facade's
  /// sharded.cut_adoptions counter covers all of them).
  std::int64_t adoptions() const { return adoptions_.load(std::memory_order_relaxed); }
  const CutAdopterPolicy& policy() const { return policy_; }

 private:
  void loop();

  ShardedStreamingGraph& graph_;
  CutAdopterPolicy policy_;
  Heartbeat* heart_ = nullptr;  ///< liveness stamp when telemetry on
  std::atomic<std::int64_t> adoptions_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;  ///< keep last: starts in the constructor's tail
};

}  // namespace hyscale
