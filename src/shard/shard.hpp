// Umbrella header for the sharded streaming serving tier.
//
//   ShardOwnerMap        — vertex -> shard: base Partition + seeded hash
//                          for streamed-in ids
//   ShardedCut           — immutable per-shard version vector; queries
//                          only ever read an adopted cut
//   ShardedStreamingGraph— N partition-routed StreamingGraph shards
//                          behind one facade: broadcast vertex space,
//                          owner-routed edges/features, halo mirrors
//   ShardedSampler       — bit-identical GraphSAGE sampling over a cut
//   CutAdopter           — background version-vector advancer
//   ShardedUpdateDriver  — the facade analogue of UpdateGenerator
#pragma once

#include "shard/cut_adopter.hpp"
#include "shard/sharded_graph.hpp"
#include "shard/sharded_sampler.hpp"
#include "shard/update_driver.hpp"
