#include "shard/sharded_sampler.hpp"

namespace hyscale {

// Shared fanout/RNG core pinned to one instantiation, like
// OverlaySampler's (see sampling/fanout_core.hpp).
template class FanoutSamplerCore<ShardedCut>;

MiniBatch sample_full_sharded(const ShardedCut& cut, const std::vector<VertexId>& seeds,
                              int num_layers) {
  return sample_full_via<ShardedSampler>(cut, seeds, num_layers, "sample_full_sharded");
}

}  // namespace hyscale
