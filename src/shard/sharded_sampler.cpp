#include "shard/sharded_sampler.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace hyscale {

ShardedSampler::ShardedSampler(std::shared_ptr<const ShardedCut> cut,
                               std::vector<int> fanouts, std::uint64_t seed)
    : cut_(std::move(cut)), fanouts_(std::move(fanouts)), stream_(seed) {
  if (!cut_) throw std::invalid_argument("ShardedSampler: null cut");
  if (fanouts_.empty()) throw std::invalid_argument("ShardedSampler: fanouts empty");
  for (int f : fanouts_) {
    if (f <= 0) throw std::invalid_argument("ShardedSampler: fanouts must be positive");
  }
  local_of_.assign(static_cast<std::size_t>(cut_->num_vertices()), 0);
}

void ShardedSampler::set_cut(std::shared_ptr<const ShardedCut> cut) {
  if (!cut) throw std::invalid_argument("ShardedSampler::set_cut: null cut");
  cut_ = std::move(cut);
  if (static_cast<std::size_t>(cut_->num_vertices()) > local_of_.size()) {
    local_of_.resize(static_cast<std::size_t>(cut_->num_vertices()), 0);
  }
}

ShardedSampler::Frontier ShardedSampler::expand(const std::vector<VertexId>& dst, int fanout) {
  Frontier frontier;
  LayerBlock& block = frontier.block;
  block.num_dst = static_cast<std::int64_t>(dst.size());
  block.src_nodes = dst;  // dst prefix convention
  block.indptr.reserve(dst.size() + 1);
  block.indptr.push_back(0);

  for (std::size_t i = 0; i < dst.size(); ++i) {
    local_of_[static_cast<std::size_t>(dst[i])] = static_cast<std::int64_t>(i) + 1;
    touched_.push_back(dst[i]);
  }

  Xoshiro256 rng(splitmix64(stream_));
  for (VertexId v : dst) {
    // The owner shard's merged live adjacency — element for element
    // what the flat graph's version (and a rebuilt CSR) would store,
    // so the partial Fisher-Yates below draws the same sample.
    combined_.clear();
    cut_->append_neighbors(v, combined_);
    const auto degree = static_cast<std::int64_t>(combined_.size());
    const std::int64_t take = std::min<std::int64_t>(fanout, degree);
    // Partial Fisher-Yates: the first `take` entries become a uniform
    // sample without replacement.
    for (std::int64_t i = 0; i < take; ++i) {
      const auto j = i + static_cast<std::int64_t>(
                             rng.bounded(static_cast<std::uint64_t>(degree - i)));
      std::swap(combined_[static_cast<std::size_t>(i)], combined_[static_cast<std::size_t>(j)]);
      const VertexId u = combined_[static_cast<std::size_t>(i)];
      std::int64_t& slot = local_of_[static_cast<std::size_t>(u)];
      if (slot == 0) {
        block.src_nodes.push_back(u);
        slot = static_cast<std::int64_t>(block.src_nodes.size());
        touched_.push_back(u);
      }
      block.indices.push_back(slot - 1);
    }
    block.indptr.push_back(static_cast<EdgeId>(block.indices.size()));
  }

  for (VertexId v : touched_) local_of_[static_cast<std::size_t>(v)] = 0;
  touched_.clear();

  // True live degrees (owner-shard exact) for the GCN normalisation —
  // the live graph's D(v), not the sampled degree.
  block.src_degrees.reserve(block.src_nodes.size());
  for (VertexId v : block.src_nodes) block.src_degrees.push_back(cut_->degree(v));

  frontier.nodes = block.src_nodes;
  return frontier;
}

MiniBatch ShardedSampler::sample(const std::vector<VertexId>& seeds) {
  if (seeds.empty()) throw std::invalid_argument("ShardedSampler::sample: empty seeds");
  for (VertexId s : seeds) {
    if (s < 0 || s >= cut_->num_vertices())
      throw std::invalid_argument("ShardedSampler::sample: seed out of range");
  }
  MiniBatch batch;
  batch.seeds = seeds;
  const int num_layers = static_cast<int>(fanouts_.size());
  batch.blocks.resize(static_cast<std::size_t>(num_layers));

  std::vector<VertexId> frontier = seeds;
  // Top-down: output layer first, then inward toward the input features.
  for (int l = num_layers - 1; l >= 0; --l) {
    ++stream_;
    Frontier next = expand(frontier, fanouts_[static_cast<std::size_t>(l)]);
    batch.blocks[static_cast<std::size_t>(l)] = std::move(next.block);
    frontier = std::move(next.nodes);
  }
  return batch;
}

MiniBatch sample_full_sharded(const ShardedCut& cut, const std::vector<VertexId>& seeds,
                              int num_layers) {
  if (num_layers <= 0)
    throw std::invalid_argument("sample_full_sharded: num_layers must be positive");
  // Like sample_full_overlay: any fanout >= every live degree takes
  // every neighbor and burns the same number of RNG draws (one per
  // taken edge), so the bound's exact value never changes the batch.
  const int fanout = static_cast<int>(std::max<EdgeId>(1, cut.max_degree()));
  // The cut is borrowed for the sampler's (stack-bound) lifetime.
  ShardedSampler sampler(
      std::shared_ptr<const ShardedCut>(&cut, [](const ShardedCut*) {}),
      std::vector<int>(static_cast<std::size_t>(num_layers), fanout), /*seed=*/0);
  return sampler.sample(seeds);
}

}  // namespace hyscale
