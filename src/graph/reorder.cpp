#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace hyscale {

std::vector<VertexId> degree_order(const CsrGraph& graph) {
  std::vector<VertexId> perm(static_cast<std::size_t>(graph.num_vertices()));
  std::iota(perm.begin(), perm.end(), VertexId{0});
  std::stable_sort(perm.begin(), perm.end(), [&](VertexId a, VertexId b) {
    return graph.degree(a) > graph.degree(b);
  });
  return perm;
}

std::vector<VertexId> invert_permutation(const std::vector<VertexId>& perm) {
  std::vector<VertexId> inv(perm.size(), VertexId{-1});
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const VertexId old_id = perm[i];
    if (old_id < 0 || static_cast<std::size_t>(old_id) >= perm.size() ||
        inv[static_cast<std::size_t>(old_id)] != -1)
      throw std::invalid_argument("invert_permutation: not a permutation");
    inv[static_cast<std::size_t>(old_id)] = static_cast<VertexId>(i);
  }
  return inv;
}

CsrGraph apply_permutation(const CsrGraph& graph, const std::vector<VertexId>& perm) {
  if (perm.size() != static_cast<std::size_t>(graph.num_vertices()))
    throw std::invalid_argument("apply_permutation: size mismatch");
  const std::vector<VertexId> inv = invert_permutation(perm);
  const VertexId n = graph.num_vertices();
  std::vector<EdgeId> indptr(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId new_id = 0; new_id < n; ++new_id) {
    indptr[static_cast<std::size_t>(new_id) + 1] =
        indptr[static_cast<std::size_t>(new_id)] + graph.degree(perm[static_cast<std::size_t>(new_id)]);
  }
  std::vector<VertexId> indices(static_cast<std::size_t>(graph.num_edges()));
  for (VertexId new_id = 0; new_id < n; ++new_id) {
    EdgeId cursor = indptr[static_cast<std::size_t>(new_id)];
    std::vector<VertexId> remapped;
    for (VertexId old_neighbor : graph.neighbors(perm[static_cast<std::size_t>(new_id)])) {
      remapped.push_back(inv[static_cast<std::size_t>(old_neighbor)]);
    }
    std::sort(remapped.begin(), remapped.end());
    for (VertexId nb : remapped) indices[static_cast<std::size_t>(cursor++)] = nb;
  }
  return CsrGraph(std::move(indptr), std::move(indices));
}

}  // namespace hyscale
