#include "graph/generator.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "graph/builder.hpp"

namespace hyscale {

CsrGraph generate_rmat(const RmatParams& params) {
  if (params.scale < 1 || params.scale > 30)
    throw std::invalid_argument("generate_rmat: scale out of range [1,30]");
  const double d = 1.0 - params.a - params.b - params.c;
  if (d < 0.0) throw std::invalid_argument("generate_rmat: a+b+c must be <= 1");

  const VertexId n = VertexId{1} << params.scale;
  const auto target = static_cast<std::size_t>(params.edge_factor * static_cast<double>(n));
  Xoshiro256 rng(params.seed);

  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(target);
  for (std::size_t e = 0; e < target; ++e) {
    VertexId u = 0, v = 0;
    for (int level = 0; level < params.scale; ++level) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < params.a) {
        // top-left quadrant: no bits set
      } else if (r < params.a + params.b) {
        v |= 1;
      } else if (r < params.a + params.b + params.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    edges.emplace_back(u, v);
  }
  EdgeListOptions options;
  options.symmetrize = params.symmetrize;
  return build_csr(n, std::move(edges), options);
}

CsrGraph generate_sbm(const SbmParams& params) {
  if (params.vertices_per_block <= 0 || params.num_blocks <= 0)
    throw std::invalid_argument("generate_sbm: block sizes must be positive");
  const VertexId n = params.vertices_per_block * params.num_blocks;
  Xoshiro256 rng(params.seed);
  std::vector<std::pair<VertexId, VertexId>> edges;
  // Expected edge count for reservation.
  const double per_block = 0.5 * static_cast<double>(params.vertices_per_block) *
                           static_cast<double>(params.vertices_per_block) * params.p_intra;
  edges.reserve(static_cast<std::size_t>(per_block * params.num_blocks * 1.5));

  for (VertexId u = 0; u < n; ++u) {
    const VertexId block_u = u / params.vertices_per_block;
    for (VertexId v = u + 1; v < n; ++v) {
      const VertexId block_v = v / params.vertices_per_block;
      const double p = (block_u == block_v) ? params.p_intra : params.p_inter;
      if (rng.uniform() < p) edges.emplace_back(u, v);
    }
  }
  return build_csr(n, std::move(edges));
}

CsrGraph generate_erdos_renyi(VertexId num_vertices, double p, std::uint64_t seed) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("generate_erdos_renyi: p not in [0,1]");
  std::vector<std::pair<VertexId, VertexId>> edges;
  if (p > 0.0 && num_vertices > 1) {
    Xoshiro256 rng(seed);
    const double log_1mp = std::log(1.0 - p);
    // Geometric skipping over the upper triangle, O(E) expected time.
    const auto total = static_cast<std::uint64_t>(num_vertices) *
                       static_cast<std::uint64_t>(num_vertices - 1) / 2;
    std::uint64_t position = 0;
    auto advance = [&]() -> bool {
      if (p >= 1.0) {
        ++position;
        return position <= total;
      }
      const double r = std::max(rng.uniform(), 1e-300);
      position += 1 + static_cast<std::uint64_t>(std::floor(std::log(r) / log_1mp));
      return position <= total;
    };
    while (advance()) {
      // Decode linear index `position-1` in the strictly-upper triangle.
      const std::uint64_t k = position - 1;
      // Row search: u such that offset(u) <= k < offset(u+1) where
      // offset(u) = u*n - u*(u+1)/2. Solve quadratically then correct.
      const double nd = static_cast<double>(num_vertices);
      double u_guess = nd - 0.5 - std::sqrt((nd - 0.5) * (nd - 0.5) - 2.0 * static_cast<double>(k));
      auto u = static_cast<std::uint64_t>(std::max(0.0, std::floor(u_guess)));
      auto offset = [&](std::uint64_t row) {
        return row * static_cast<std::uint64_t>(num_vertices) - row * (row + 1) / 2;
      };
      while (u + 1 < static_cast<std::uint64_t>(num_vertices) && offset(u + 1) <= k) ++u;
      while (u > 0 && offset(u) > k) --u;
      const std::uint64_t v = u + 1 + (k - offset(u));
      edges.emplace_back(static_cast<VertexId>(u), static_cast<VertexId>(v));
    }
  }
  return build_csr(num_vertices, std::move(edges));
}

}  // namespace hyscale
