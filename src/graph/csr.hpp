// Compressed Sparse Row graph — the in-memory graph topology G(V, E).
//
// The paper stores the full input graph (topology + features) in CPU
// memory (§III-B) because large-scale graphs such as MAG240M exceed any
// device memory.  CSR gives O(1) access to a vertex's neighbor list,
// which is what both the Neighbor Sampler and the GCN normalisation
// (degree lookups) need.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hyscale {

using VertexId = std::int64_t;
using EdgeId = std::int64_t;

/// Immutable CSR adjacency.  `indptr` has num_vertices()+1 entries;
/// the neighbors of v are indices[indptr[v] .. indptr[v+1]).
class CsrGraph {
 public:
  CsrGraph() = default;
  CsrGraph(std::vector<EdgeId> indptr, std::vector<VertexId> indices);

  VertexId num_vertices() const {
    return indptr_.empty() ? 0 : static_cast<VertexId>(indptr_.size() - 1);
  }
  EdgeId num_edges() const { return indptr_.empty() ? 0 : indptr_.back(); }

  EdgeId degree(VertexId v) const { return indptr_[v + 1] - indptr_[v]; }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {indices_.data() + indptr_[v], static_cast<std::size_t>(degree(v))};
  }

  const std::vector<EdgeId>& indptr() const { return indptr_; }
  const std::vector<VertexId>& indices() const { return indices_; }

  /// Highest out-degree in the graph (0 for an empty graph).
  EdgeId max_degree() const;

  /// Mean out-degree (0 for an empty graph).
  double mean_degree() const;

  /// Structural sanity: indptr monotone, indices in range.  Used by tests
  /// and by the binary loader.
  bool validate() const;

  /// Returns the reverse (transpose) graph.  For symmetric graphs this is
  /// a copy; needed to compute in-degrees on directed generators.
  CsrGraph transpose() const;

 private:
  std::vector<EdgeId> indptr_;
  std::vector<VertexId> indices_;
};

}  // namespace hyscale
