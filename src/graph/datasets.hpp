// Dataset registry mirroring Table III of the paper, plus synthetic
// instantiation.
//
// Two views of every dataset coexist:
//   * `DatasetInfo` carries the *paper-scale* statistics (|V|, |E|,
//     feature dims f0/f1/f2) that feed the performance model and the
//     benchmark harnesses — these are the numbers that determine stage
//     times in Eqs. 7-13;
//   * `Dataset` is a *materialised* (optionally scaled-down) synthetic
//     graph with real features and labels, used wherever actual numerics
//     run (training loops, convergence tests, sampler statistics).
// The scale factor shrinks |V| while preserving the degree distribution
// (RMAT parameters fixed), so sampled mini-batch shapes per seed vertex
// are statistically unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "tensor/tensor.hpp"

namespace hyscale {

struct DatasetInfo {
  std::string name;
  std::uint64_t num_vertices = 0;  ///< paper-scale |V|
  std::uint64_t num_edges = 0;     ///< paper-scale |E| (directed count as reported)
  int f0 = 0;  ///< input feature length
  int f1 = 0;  ///< hidden feature length
  int f2 = 0;  ///< output length (number of classes)
  /// Training-split size (OGB official splits); determines the number of
  /// mini-batch iterations per epoch.
  std::uint64_t train_count = 0;

  /// Bytes of the full single-precision feature matrix |V| * f0 * 4.
  double feature_bytes() const {
    return static_cast<double>(num_vertices) * f0 * 4.0;
  }
  double mean_degree() const {
    return num_vertices == 0 ? 0.0
                             : static_cast<double>(num_edges) / static_cast<double>(num_vertices);
  }
};

/// Table III rows: ogbn-products, ogbn-papers100M, MAG240M (homo).
const std::vector<DatasetInfo>& paper_datasets();

/// Lookup by name; throws std::out_of_range on unknown name.
const DatasetInfo& dataset_info(const std::string& name);

/// A materialised dataset: topology + features + labels + train split.
struct Dataset {
  DatasetInfo info;          ///< paper-scale statistics (for cost models)
  CsrGraph graph;            ///< materialised (scaled) topology
  Tensor features;           ///< [num_materialised_vertices, f0]
  std::vector<int> labels;   ///< class id per vertex, in [0, f2)
  std::vector<VertexId> train_ids;  ///< training seed vertices

  VertexId num_vertices() const { return graph.num_vertices(); }
};

struct MaterializeOptions {
  /// Approximate number of materialised vertices (rounded to a power of
  /// two by the RMAT generator).  The paper-scale counts stay in `info`.
  VertexId target_vertices = 1 << 14;
  double train_fraction = 0.1;
  std::uint64_t seed = 42;
  /// When true, features carry class-correlated signal so training
  /// converges; when false, features are pure noise (faster, for
  /// throughput-only benches).
  bool label_signal = true;
};

/// Builds a synthetic stand-in for the named paper dataset.
Dataset materialize_dataset(const std::string& name, const MaterializeOptions& options = {});

/// Builds a small SBM-based dataset with genuinely learnable structure;
/// used by convergence tests and the quickstart example.
Dataset make_community_dataset(int num_classes, VertexId vertices_per_class,
                               int feature_dim, std::uint64_t seed);

}  // namespace hyscale
