// Edge-list -> CSR construction with the cleanup passes every real graph
// pipeline needs: sorting, de-duplication, self-loop removal and
// symmetrisation (OGB node-property graphs are undirected).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/csr.hpp"

namespace hyscale {

struct EdgeListOptions {
  bool symmetrize = true;      ///< add (v,u) for every (u,v)
  bool remove_self_loops = true;
  bool deduplicate = true;
};

/// Builds a CSR graph over `num_vertices` vertices from an edge list.
/// Edges referencing out-of-range vertices throw std::invalid_argument.
CsrGraph build_csr(VertexId num_vertices,
                   std::vector<std::pair<VertexId, VertexId>> edges,
                   const EdgeListOptions& options = {});

}  // namespace hyscale
