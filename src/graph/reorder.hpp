// Vertex reordering utilities.
//
// The FPGA kernel (§IV-C) sorts mini-batch edges by source vertex so the
// Feature Duplicator reuses each fetched feature D_out(v) times; degree
// reordering of the *full* graph additionally improves feature-gather
// locality for the CPU trainer and the PaGraph cache model (hot vertices
// first).
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace hyscale {

/// Permutation such that perm[new_id] = old_id, ordered by descending
/// degree (stable for ties).
std::vector<VertexId> degree_order(const CsrGraph& graph);

/// Inverse of a permutation: inv[old_id] = new_id.
std::vector<VertexId> invert_permutation(const std::vector<VertexId>& perm);

/// Relabels the graph under `perm` (perm[new] = old).
CsrGraph apply_permutation(const CsrGraph& graph, const std::vector<VertexId>& perm);

}  // namespace hyscale
