// Graph partitioning for the distributed baselines.
//
// HyScale-GNN itself never partitions the graph — that is its central
// argument against P3/DistDGL (§VII).  We implement partitioning so the
// baseline models can quantify what HyScale avoids: edge cut drives the
// halo/feature traffic that dominates P3 and DistDGLv2's inter-node
// communication (§VI-E2).
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace hyscale {

struct Partition {
  int num_parts = 1;
  std::vector<int> assignment;  ///< part id per vertex

  /// Edges whose endpoints land in different parts.
  EdgeId edge_cut = 0;
  /// Per-part count of owned vertices.
  std::vector<VertexId> part_sizes;
  /// Per-part count of remote neighbors (halo vertices to fetch).
  std::vector<VertexId> halo_sizes;

  /// Degenerate inputs are well-defined: an edgeless graph cuts
  /// nothing (0.0) rather than dividing by zero.
  double edge_cut_fraction(EdgeId total_edges) const {
    return total_edges == 0 ? 0.0
                            : static_cast<double>(edge_cut) / static_cast<double>(total_edges);
  }
  /// Max/mean part size; 1.0 = perfectly balanced.  Degenerate inputs
  /// (no parts, empty graph) report the balanced value 1.0 — the
  /// router calls this on every rebalance decision and must never
  /// divide by zero.
  double imbalance() const;
};

/// Hash (random) partitioner — what DistDGL falls back to; high edge cut.
Partition partition_hash(const CsrGraph& graph, int num_parts, std::uint64_t seed);

/// Greedy BFS grower (Linear Deterministic Greedy flavour): grows parts
/// from seeds, assigning each frontier vertex to the neighbor-majority
/// part under a capacity cap.  Approximates the locality METIS-style
/// partitioners give DistDGL.
Partition partition_bfs(const CsrGraph& graph, int num_parts, std::uint64_t seed);

/// Fills edge_cut / part_sizes / halo_sizes from `assignment`.
void compute_partition_stats(const CsrGraph& graph, Partition& partition);

}  // namespace hyscale
