#include "graph/io.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace hyscale {

namespace {
constexpr std::uint64_t kMagic = 0x48595343'53520001ULL;  // "HYSC" "SR" v1
}

void save_csr(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_csr: cannot open " + path);
  const std::uint64_t magic = kMagic;
  const std::uint64_t n = static_cast<std::uint64_t>(graph.num_vertices());
  const std::uint64_t m = static_cast<std::uint64_t>(graph.num_edges());
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(graph.indptr().data()),
            static_cast<std::streamsize>(graph.indptr().size() * sizeof(EdgeId)));
  out.write(reinterpret_cast<const char*>(graph.indices().data()),
            static_cast<std::streamsize>(graph.indices().size() * sizeof(VertexId)));
  if (!out) throw std::runtime_error("save_csr: write failed for " + path);
}

CsrGraph load_csr(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_csr: cannot open " + path);
  std::uint64_t magic = 0, n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in || magic != kMagic) throw std::runtime_error("load_csr: bad header in " + path);
  std::vector<EdgeId> indptr(static_cast<std::size_t>(n) + 1);
  std::vector<VertexId> indices(static_cast<std::size_t>(m));
  in.read(reinterpret_cast<char*>(indptr.data()),
          static_cast<std::streamsize>(indptr.size() * sizeof(EdgeId)));
  in.read(reinterpret_cast<char*>(indices.data()),
          static_cast<std::streamsize>(indices.size() * sizeof(VertexId)));
  if (!in) throw std::runtime_error("load_csr: truncated file " + path);
  CsrGraph graph(std::move(indptr), std::move(indices));
  if (!graph.validate()) throw std::runtime_error("load_csr: corrupt graph in " + path);
  return graph;
}

}  // namespace hyscale
