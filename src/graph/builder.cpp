#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace hyscale {

CsrGraph build_csr(VertexId num_vertices,
                   std::vector<std::pair<VertexId, VertexId>> edges,
                   const EdgeListOptions& options) {
  if (num_vertices < 0) throw std::invalid_argument("build_csr: negative vertex count");
  for (const auto& [u, v] : edges) {
    if (u < 0 || u >= num_vertices || v < 0 || v >= num_vertices)
      throw std::invalid_argument("build_csr: edge endpoint out of range");
  }

  if (options.symmetrize) {
    const std::size_t original = edges.size();
    edges.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i) {
      edges.emplace_back(edges[i].second, edges[i].first);
    }
  }
  if (options.remove_self_loops) {
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [](const auto& e) { return e.first == e.second; }),
                edges.end());
  }
  std::sort(edges.begin(), edges.end());
  if (options.deduplicate) {
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  std::vector<EdgeId> indptr(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const auto& [u, v] : edges) {
    (void)v;
    ++indptr[static_cast<std::size_t>(u) + 1];
  }
  for (std::size_t i = 1; i < indptr.size(); ++i) indptr[i] += indptr[i - 1];

  std::vector<VertexId> indices(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) indices[i] = edges[i].second;

  return CsrGraph(std::move(indptr), std::move(indices));
}

}  // namespace hyscale
