#include "graph/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "graph/generator.hpp"
#include "tensor/init.hpp"

namespace hyscale {

const std::vector<DatasetInfo>& paper_datasets() {
  // Table III of the paper (feature dims f0/f1/f2 as reported).
  static const std::vector<DatasetInfo> kDatasets = {
      {"ogbn-products", 2449029ULL, 61859140ULL, 100, 256, 47, 196615ULL},
      {"ogbn-papers100M", 111059956ULL, 1615685872ULL, 128, 256, 172, 1207179ULL},
      {"MAG240M (homo)", 121751666ULL, 1297748926ULL, 756, 256, 153, 1112392ULL},
  };
  return kDatasets;
}

const DatasetInfo& dataset_info(const std::string& name) {
  for (const auto& info : paper_datasets()) {
    if (info.name == name) return info;
  }
  throw std::out_of_range("dataset_info: unknown dataset '" + name + "'");
}

namespace {

int scale_for_vertices(VertexId target) {
  int scale = 1;
  while ((VertexId{1} << scale) < target && scale < 30) ++scale;
  return scale;
}

}  // namespace

Dataset materialize_dataset(const std::string& name, const MaterializeOptions& options) {
  const DatasetInfo& info = dataset_info(name);
  Dataset ds;
  ds.info = info;

  RmatParams rmat;
  rmat.scale = scale_for_vertices(options.target_vertices);
  // Preserve the paper dataset's density: directed edge factor |E| / |V|.
  rmat.edge_factor = std::max(2.0, info.mean_degree() / 2.0);
  rmat.seed = options.seed;
  ds.graph = generate_rmat(rmat);

  const VertexId n = ds.graph.num_vertices();
  ds.features.resize(n, info.f0);
  ds.labels.resize(static_cast<std::size_t>(n));

  Xoshiro256 rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
  // Labels are degree-bucketed: high-degree hubs concentrate in a few
  // classes, mimicking the skew of product/paper categories.
  for (VertexId v = 0; v < n; ++v) {
    const auto deg = static_cast<double>(ds.graph.degree(v));
    const int bucket = static_cast<int>(std::log2(1.0 + deg));
    ds.labels[static_cast<std::size_t>(v)] =
        (bucket * 7 + static_cast<int>(rng.bounded(3))) % info.f2;
  }

  normal_init(ds.features, 1.0f, options.seed + 1);
  if (options.label_signal) {
    // Inject class-dependent mean shift in a label-indexed coordinate so
    // models can actually learn.
    for (VertexId v = 0; v < n; ++v) {
      const int label = ds.labels[static_cast<std::size_t>(v)];
      const int coord = label % info.f0;
      ds.features.at(v, coord) += 3.0f;
    }
  }

  // Train split: uniform sample of `train_fraction` vertices.
  const auto want = static_cast<std::size_t>(options.train_fraction * static_cast<double>(n));
  ds.train_ids.reserve(want);
  for (VertexId v = 0; v < n; ++v) {
    if (rng.uniform() < options.train_fraction) ds.train_ids.push_back(v);
  }
  if (ds.train_ids.empty()) ds.train_ids.push_back(0);
  return ds;
}

Dataset make_community_dataset(int num_classes, VertexId vertices_per_class,
                               int feature_dim, std::uint64_t seed) {
  if (num_classes <= 0 || vertices_per_class <= 0 || feature_dim <= 0)
    throw std::invalid_argument("make_community_dataset: sizes must be positive");

  SbmParams sbm;
  sbm.num_blocks = num_classes;
  sbm.vertices_per_block = vertices_per_class;
  sbm.p_intra = 0.10;
  sbm.p_inter = 0.005;
  sbm.seed = seed;

  Dataset ds;
  ds.graph = generate_sbm(sbm);
  const VertexId n = ds.graph.num_vertices();

  ds.info.name = "community-sbm";
  ds.info.num_vertices = static_cast<std::uint64_t>(n);
  ds.info.num_edges = static_cast<std::uint64_t>(ds.graph.num_edges());
  ds.info.f0 = feature_dim;
  ds.info.f1 = std::max(16, feature_dim / 2);
  ds.info.f2 = num_classes;

  ds.features.resize(n, feature_dim);
  normal_init(ds.features, 1.0f, seed + 11);
  ds.labels.resize(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    const int label = static_cast<int>(v / vertices_per_class);
    ds.labels[static_cast<std::size_t>(v)] = label;
    // Strong class signal on one coordinate per class.
    ds.features.at(v, label % feature_dim) += 2.5f;
  }

  Xoshiro256 rng(seed + 13);
  for (VertexId v = 0; v < n; ++v) {
    if (rng.uniform() < 0.5) ds.train_ids.push_back(v);
  }
  if (ds.train_ids.empty()) ds.train_ids.push_back(0);
  ds.info.train_count = ds.train_ids.size();
  return ds;
}

}  // namespace hyscale
