#include "graph/partition.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_set>

#include "common/rng.hpp"

namespace hyscale {

double Partition::imbalance() const {
  if (part_sizes.empty()) return 1.0;
  const VertexId max_size = *std::max_element(part_sizes.begin(), part_sizes.end());
  VertexId total = 0;
  for (VertexId s : part_sizes) total += s;
  const double mean = static_cast<double>(total) / static_cast<double>(part_sizes.size());
  return mean == 0.0 ? 1.0 : static_cast<double>(max_size) / mean;
}

Partition partition_hash(const CsrGraph& graph, int num_parts, std::uint64_t seed) {
  if (num_parts <= 0) throw std::invalid_argument("partition_hash: num_parts must be positive");
  Partition partition;
  partition.num_parts = num_parts;
  partition.assignment.resize(static_cast<std::size_t>(graph.num_vertices()));
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    std::uint64_t h = seed ^ static_cast<std::uint64_t>(v);
    partition.assignment[static_cast<std::size_t>(v)] =
        static_cast<int>(splitmix64(h) % static_cast<std::uint64_t>(num_parts));
  }
  compute_partition_stats(graph, partition);
  return partition;
}

Partition partition_bfs(const CsrGraph& graph, int num_parts, std::uint64_t seed) {
  if (num_parts <= 0) throw std::invalid_argument("partition_bfs: num_parts must be positive");
  const VertexId n = graph.num_vertices();
  Partition partition;
  partition.num_parts = num_parts;
  partition.assignment.assign(static_cast<std::size_t>(n), -1);
  if (n == 0) {
    compute_partition_stats(graph, partition);
    return partition;
  }

  const VertexId capacity = (n + num_parts - 1) / num_parts;
  std::vector<VertexId> filled(static_cast<std::size_t>(num_parts), 0);
  Xoshiro256 rng(seed);

  std::deque<VertexId> frontier;
  // Seed each part with a random unassigned vertex.
  for (int p = 0; p < num_parts; ++p) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto v = static_cast<VertexId>(rng.bounded(static_cast<std::uint64_t>(n)));
      if (partition.assignment[static_cast<std::size_t>(v)] == -1) {
        partition.assignment[static_cast<std::size_t>(v)] = p;
        ++filled[static_cast<std::size_t>(p)];
        frontier.push_back(v);
        break;
      }
    }
  }

  std::vector<VertexId> votes(static_cast<std::size_t>(num_parts));
  while (!frontier.empty()) {
    const VertexId u = frontier.front();
    frontier.pop_front();
    for (VertexId v : graph.neighbors(u)) {
      if (partition.assignment[static_cast<std::size_t>(v)] != -1) continue;
      // Majority vote of already-assigned neighbors, capacity-capped.
      std::fill(votes.begin(), votes.end(), 0);
      for (VertexId w : graph.neighbors(v)) {
        const int part = partition.assignment[static_cast<std::size_t>(w)];
        if (part >= 0) ++votes[static_cast<std::size_t>(part)];
      }
      int best = -1;
      VertexId best_votes = -1;
      for (int p = 0; p < num_parts; ++p) {
        if (filled[static_cast<std::size_t>(p)] >= capacity) continue;
        if (votes[static_cast<std::size_t>(p)] > best_votes) {
          best_votes = votes[static_cast<std::size_t>(p)];
          best = p;
        }
      }
      // All parts at capacity is unreachable while a vertex is still
      // unassigned (num_parts * capacity >= n), but if the invariant
      // ever breaks, spilling into the least-filled part keeps the
      // capacity violation minimal instead of scattering at random.
      if (best == -1)
        best = static_cast<int>(std::min_element(filled.begin(), filled.end()) -
                                filled.begin());
      partition.assignment[static_cast<std::size_t>(v)] = best;
      ++filled[static_cast<std::size_t>(best)];
      frontier.push_back(v);
    }
  }
  // Isolated / unreachable vertices: round-robin into least-filled parts.
  for (VertexId v = 0; v < n; ++v) {
    if (partition.assignment[static_cast<std::size_t>(v)] == -1) {
      const auto least = static_cast<int>(
          std::min_element(filled.begin(), filled.end()) - filled.begin());
      partition.assignment[static_cast<std::size_t>(v)] = least;
      ++filled[static_cast<std::size_t>(least)];
    }
  }
  compute_partition_stats(graph, partition);
  return partition;
}

void compute_partition_stats(const CsrGraph& graph, Partition& partition) {
  // The router recomputes these on every rebalance decision, so a
  // malformed assignment must fail loudly here rather than index out of
  // bounds below.
  if (partition.num_parts <= 0)
    throw std::invalid_argument("compute_partition_stats: num_parts must be positive");
  const VertexId n = graph.num_vertices();
  if (partition.assignment.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument(
        "compute_partition_stats: assignment size must match num_vertices");
  for (VertexId v = 0; v < n; ++v) {
    const int part = partition.assignment[static_cast<std::size_t>(v)];
    if (part < 0 || part >= partition.num_parts)
      throw std::invalid_argument(
          "compute_partition_stats: assignment contains out-of-range part id");
  }
  partition.part_sizes.assign(static_cast<std::size_t>(partition.num_parts), 0);
  partition.halo_sizes.assign(static_cast<std::size_t>(partition.num_parts), 0);
  partition.edge_cut = 0;

  std::vector<std::unordered_set<VertexId>> halos(
      static_cast<std::size_t>(partition.num_parts));
  for (VertexId v = 0; v < n; ++v) {
    const int part_v = partition.assignment[static_cast<std::size_t>(v)];
    ++partition.part_sizes[static_cast<std::size_t>(part_v)];
    for (VertexId u : graph.neighbors(v)) {
      const int part_u = partition.assignment[static_cast<std::size_t>(u)];
      if (part_u != part_v) {
        ++partition.edge_cut;
        halos[static_cast<std::size_t>(part_v)].insert(u);
      }
    }
  }
  for (int p = 0; p < partition.num_parts; ++p) {
    partition.halo_sizes[static_cast<std::size_t>(p)] =
        static_cast<VertexId>(halos[static_cast<std::size_t>(p)].size());
  }
}

}  // namespace hyscale
