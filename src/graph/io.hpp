// Binary serialisation of CSR graphs (versioned, endianness-naive —
// single-host format, mirrors how preprocessed OGB shards are cached on
// disk between runs).
#pragma once

#include <string>

#include "graph/csr.hpp"

namespace hyscale {

/// Writes `graph` to `path`; throws std::runtime_error on I/O failure.
void save_csr(const CsrGraph& graph, const std::string& path);

/// Loads and validates a graph written by save_csr; throws
/// std::runtime_error on I/O failure, bad magic, or corrupt structure.
CsrGraph load_csr(const std::string& path);

}  // namespace hyscale
