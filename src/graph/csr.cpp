#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>

namespace hyscale {

CsrGraph::CsrGraph(std::vector<EdgeId> indptr, std::vector<VertexId> indices)
    : indptr_(std::move(indptr)), indices_(std::move(indices)) {
  if (indptr_.empty()) throw std::invalid_argument("CsrGraph: indptr must have >= 1 entry");
  if (indptr_.front() != 0) throw std::invalid_argument("CsrGraph: indptr[0] must be 0");
  if (indptr_.back() != static_cast<EdgeId>(indices_.size()))
    throw std::invalid_argument("CsrGraph: indptr.back() must equal indices.size()");
}

EdgeId CsrGraph::max_degree() const {
  EdgeId best = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) best = std::max(best, degree(v));
  return best;
}

double CsrGraph::mean_degree() const {
  const VertexId n = num_vertices();
  return n == 0 ? 0.0 : static_cast<double>(num_edges()) / static_cast<double>(n);
}

bool CsrGraph::validate() const {
  if (indptr_.empty()) return false;
  if (indptr_.front() != 0) return false;
  if (indptr_.back() != static_cast<EdgeId>(indices_.size())) return false;
  for (std::size_t i = 1; i < indptr_.size(); ++i) {
    if (indptr_[i] < indptr_[i - 1]) return false;
  }
  const VertexId n = num_vertices();
  for (VertexId idx : indices_) {
    if (idx < 0 || idx >= n) return false;
  }
  return true;
}

CsrGraph CsrGraph::transpose() const {
  const VertexId n = num_vertices();
  std::vector<EdgeId> out_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId dst : indices_) ++out_ptr[static_cast<std::size_t>(dst) + 1];
  for (std::size_t i = 1; i < out_ptr.size(); ++i) out_ptr[i] += out_ptr[i - 1];
  std::vector<VertexId> out_idx(indices_.size());
  std::vector<EdgeId> cursor(out_ptr.begin(), out_ptr.end() - 1);
  for (VertexId src = 0; src < n; ++src) {
    for (VertexId dst : neighbors(src)) {
      out_idx[static_cast<std::size_t>(cursor[static_cast<std::size_t>(dst)]++)] = src;
    }
  }
  return CsrGraph(std::move(out_ptr), std::move(out_idx));
}

}  // namespace hyscale
