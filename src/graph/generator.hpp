// Synthetic graph generators.
//
// The paper evaluates on OGB datasets (ogbn-products, ogbn-papers100M,
// MAG240M-homo) which are not shipped with this repository; we substitute
// deterministic synthetic graphs with matching structural character:
//   * RMAT / Kronecker (a,b,c,d) produces the skewed power-law degree
//     distribution that stresses neighbor sampling and feature gather the
//     same way web/citation graphs do (Graph500 uses the same model);
//   * a planted-partition (SBM) generator gives label-correlated
//     community structure so GNN convergence tests have real signal;
//   * Erdős–Rényi is kept as a degenerate control for property tests.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace hyscale {

struct RmatParams {
  int scale = 16;              ///< 2^scale vertices
  double edge_factor = 16.0;   ///< directed edges before cleanup = edge_factor * V
  double a = 0.57, b = 0.19, c = 0.19;  ///< Graph500 defaults (d = 1-a-b-c)
  std::uint64_t seed = 1;
  bool symmetrize = true;
};

/// Deterministic RMAT generator.  Degree distribution is heavy-tailed.
CsrGraph generate_rmat(const RmatParams& params);

struct SbmParams {
  VertexId vertices_per_block = 256;
  int num_blocks = 4;
  double p_intra = 0.08;   ///< edge probability inside a block
  double p_inter = 0.002;  ///< edge probability across blocks
  std::uint64_t seed = 7;
};

/// Stochastic block model with `num_blocks` planted communities.
/// Block of vertex v is v / vertices_per_block — used as its class label
/// by the dataset layer.
CsrGraph generate_sbm(const SbmParams& params);

/// Erdős–Rényi G(n, p) via geometric skipping (O(E) not O(n^2)).
CsrGraph generate_erdos_renyi(VertexId num_vertices, double p, std::uint64_t seed);

}  // namespace hyscale
