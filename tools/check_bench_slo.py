#!/usr/bin/env python3
"""Gate committed BENCH_*.json records: schema first, then the SLO.

Schema gate (all records): every point must carry the required keys for
its bench kind (keyed off the record's "bench" field), counters must be
non-negative integers, and rate/latency fields non-negative numbers.
The benches build every point from a MetricsRegistry snapshot; this
gate catches a renamed instrument or a dropped field before the record
is committed with silently-zero data.

Hot-path gate (hotpath records): the quantized gather must stay within
its own documented logit tolerance while moving >= 3x fewer bytes per
row than fp32, and the fold-time cache re-rank must never LOWER the hit
rate (delta >= 0, after >= before).

Sharded gate ("sharded" records, standalone or nested inside a
streaming record): every shard's SLO publisher must hold the point's
staleness budget with zero breaches, the halo-plane fractions
(halo_hit_rate, cross_shard_gather_fraction) must lie in [0, 1], and
the 1-shard degenerate points must report zero cross-shard traffic.

SLO gate (streaming records): the non-blocking-fold work (ISSUE-5)
tightened the streaming staleness bound to the publisher budget alone:
`sustained_churn_slo` must report zero breaches and a worst
completion-time staleness within its budget.  This script fails loudly
if a regression (e.g. publishes stalling behind compaction folds
again) sneaks back into a regenerated record.

Usage:
    tools/check_bench_slo.py [BENCH_streaming.json ...] [--tolerance FACTOR]

`--tolerance` scales the budget before comparing (default 1.0: the
record must meet the budget exactly as the acceptance criteria state).
Exit status: 0 on pass, 1 on SLO violation or a malformed record.
"""

import argparse
import json
import sys

SLO_POINT = "sustained_churn_slo"

# Per-kind point schema: required keys, the subset that must be
# non-negative integers (counters), and the subset that must be
# non-negative numbers (rates/latencies).  Config echoes (fractions,
# budgets) only need presence.
COUNTER_KEYS = {
    "serving": [
        "completed_requests", "rejected_submits",
    ],
    "hotpath": [
        "rows_gathered",
    ],
    "streaming": [
        "completed_requests", "last_served_version", "accepted_edges",
        "removed_edges", "rejected_removals", "added_vertices",
        "removed_vertices", "recycled_vertices", "dead_vertices",
        "tombstones_pending", "feature_updates", "expired_vertices",
        "publishes",
        "full_compactions", "annihilation_passes", "annihilated_ops",
    ],
    "sharded": [
        "shards", "completed_requests", "last_served_cut",
        "accepted_edges", "removed_edges", "rejected_removals",
        "added_vertices", "removed_vertices", "feature_updates",
        "cut_adoptions", "halo_refreshed_rows", "halo_hits",
        "cross_shard_rows",
    ],
}
# Every per_shard entry of a sharded point carries its shard's publish
# and publisher-staleness instruments.
PER_SHARD_COUNTER_KEYS = ["shard", "publishes", "compactions",
                          "publisher_publishes", "publisher_breaches"]
PER_SHARD_NONNEG_KEYS = ["publisher_worst_staleness_ms",
                         "publisher_worst_publish_cost_ms"]
# publisher_* fields exist only on points that actually ran the
# background publisher (slo_budget_ms > 0); on publisher-less points
# they must be ABSENT or null — a zero-filled publisher_breaches on a
# point that never had a publisher reads as a clean SLO run that never
# happened.
PUBLISHER_COUNTER_KEYS = ["publisher_publishes", "publisher_breaches"]
PUBLISHER_NONNEG_KEYS = ["publisher_worst_staleness_ms",
                         "publisher_worst_publish_cost_ms"]
NONNEG_KEYS = {
    "serving": [
        "qps", "p50_ms", "p95_ms", "p99_ms", "mean_batch_requests",
        "cache_hit_rate",
    ],
    "hotpath": [
        "ns_per_row", "device_bytes_per_row", "host_bytes_per_row",
        "hit_rate",
    ],
    "streaming": [
        "qps", "p50_ms", "p99_ms", "queue_wait_p99_ms",
        "ingest_edges_per_second", "publish_lag_mean_ms",
        "publish_lag_max_ms", "cache_hit_rate",
    ],
    "sharded": [
        "qps", "p50_ms", "p99_ms", "ingest_edges_per_second",
        "edge_cut_fraction", "imbalance", "halo_hit_rate",
        "cross_shard_gather_fraction", "cache_hit_rate",
    ],
}
REQUIRED_KEYS = {
    "serving": ["name", "workers", "cache_rows", "clients"]
                + COUNTER_KEYS["serving"] + NONNEG_KEYS["serving"],
    "hotpath": ["name"] + COUNTER_KEYS["hotpath"] + NONNEG_KEYS["hotpath"],
    "streaming": ["name", "update_ops", "update_threads", "publish_every",
                  "slo_budget_ms", "ttl_ms", "compute_mean_ms"]
                  + COUNTER_KEYS["streaming"] + NONNEG_KEYS["streaming"],
    "sharded": ["name", "partitioner", "mix", "update_ops", "update_threads",
                "slo_budget_ms", "per_shard"]
                + COUNTER_KEYS["sharded"] + NONNEG_KEYS["sharded"],
}


def check_schema(path, record):
    """Returns a list of schema-failure strings (empty = pass)."""
    failures = []
    kind = record.get("bench")
    if kind not in REQUIRED_KEYS:
        return [f"unknown bench kind {kind!r} (expected one of "
                f"{sorted(REQUIRED_KEYS)})"]
    points = record.get("points")
    if not isinstance(points, list) or not points:
        return [f"'{kind}' record has no points array"]
    for i, point in enumerate(points):
        label = f"points[{i}] ({point.get('name', '?')})"
        for key in REQUIRED_KEYS[kind]:
            if key not in point:
                failures.append(f"{label}: missing required key '{key}'")
        for key in COUNTER_KEYS[kind]:
            value = point.get(key)
            if value is None:
                continue  # missing already reported
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                failures.append(f"{label}: counter '{key}' must be a "
                                f"non-negative integer, got {value!r}")
        for key in NONNEG_KEYS[kind]:
            value = point.get(key)
            if value is None:
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or value < 0:
                failures.append(f"{label}: '{key}' must be a non-negative "
                                f"number, got {value!r}")
        if kind == "streaming":
            has_publisher = point.get("slo_budget_ms", 0.0) > 0.0
            if has_publisher:
                for key in PUBLISHER_COUNTER_KEYS:
                    value = point.get(key)
                    if value is None:
                        failures.append(f"{label}: publisher point missing "
                                        f"counter '{key}'")
                    elif not isinstance(value, int) or isinstance(value, bool) \
                            or value < 0:
                        failures.append(f"{label}: counter '{key}' must be a "
                                        f"non-negative integer, got {value!r}")
                for key in PUBLISHER_NONNEG_KEYS:
                    value = point.get(key)
                    if value is None:
                        failures.append(f"{label}: publisher point missing "
                                        f"'{key}'")
                    elif not isinstance(value, (int, float)) \
                            or isinstance(value, bool) or value < 0:
                        failures.append(f"{label}: '{key}' must be a "
                                        f"non-negative number, got {value!r}")
            else:
                for key in PUBLISHER_COUNTER_KEYS + PUBLISHER_NONNEG_KEYS:
                    if point.get(key) is not None:
                        failures.append(
                            f"{label}: '{key}' present ({point[key]!r}) but "
                            f"slo_budget_ms <= 0 — publisher fields must be "
                            f"absent or null on publisher-less points")
        if kind == "sharded":
            shards = point.get("shards")
            per_shard = point.get("per_shard")
            if not isinstance(per_shard, list) or not per_shard:
                failures.append(f"{label}: 'per_shard' must be a non-empty "
                                f"array")
                continue
            if isinstance(shards, int) and not isinstance(shards, bool) \
                    and len(per_shard) != shards:
                failures.append(f"{label}: per_shard has {len(per_shard)} "
                                f"entries but shards={shards}")
            for s, entry in enumerate(per_shard):
                slabel = f"{label}.per_shard[{s}]"
                if not isinstance(entry, dict):
                    failures.append(f"{slabel}: must be an object")
                    continue
                for key in PER_SHARD_COUNTER_KEYS:
                    value = entry.get(key)
                    if not isinstance(value, int) or isinstance(value, bool) \
                            or value < 0:
                        failures.append(f"{slabel}: counter '{key}' must be a "
                                        f"non-negative integer, got {value!r}")
                for key in PER_SHARD_NONNEG_KEYS:
                    value = entry.get(key)
                    if not isinstance(value, (int, float)) \
                            or isinstance(value, bool) or value < 0:
                        failures.append(f"{slabel}: '{key}' must be a "
                                        f"non-negative number, got {value!r}")
    return failures


# The static-point observability cost notes the bench embeds in every
# streaming record; `diagnosis_overhead` (the full plane: tracing +
# exemplars + heartbeats + watchdog) is held to this p50 bound.
DIAGNOSIS_OVERHEAD_LIMIT_PCT = 3.0


def check_overhead(record, tolerance):
    """Returns (failures, ok_message) for the diagnosis-overhead bound."""
    failures = []
    for block_name in ("telemetry_overhead", "diagnosis_overhead"):
        block = record.get(block_name)
        if not isinstance(block, dict):
            failures.append(f"record has no '{block_name}' object")
            continue
        for key in ("p50_off_ms", "p50_on_ms", "overhead_pct"):
            value = block.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                failures.append(f"'{block_name}.{key}' must be a number, "
                                f"got {value!r}")
    if failures:
        return failures, None
    pct = record["diagnosis_overhead"]["overhead_pct"]
    limit = DIAGNOSIS_OVERHEAD_LIMIT_PCT * tolerance
    if pct > limit:
        failures.append(f"diagnosis_overhead.overhead_pct {pct:.2f} > "
                        f"{limit:.2f} (limit {DIAGNOSIS_OVERHEAD_LIMIT_PCT} "
                        f"x tolerance {tolerance})")
        return failures, None
    return [], f"diagnosis overhead {pct:+.2f}% <= {limit:.2f}%"


# The quantized-gather acceptance floor: int8 rows must move at least
# this many times fewer bytes than fp32 at the documented logit
# tolerance (ISSUE-8).
HOTPATH_MIN_BYTES_RATIO = 3.0


def check_hotpath(record):
    """Returns (failures, ok_message) for the hot-path gather gates:
    quantized error within its own documented tolerance at >= 3x fewer
    bytes per row, and a re-rank that never LOWERS the hit rate."""
    failures = []
    quantized = record.get("quantized")
    if not isinstance(quantized, dict):
        failures.append("record has no 'quantized' object")
    else:
        tolerance = quantized.get("tolerance")
        error = quantized.get("max_logit_abs_error")
        ratio = quantized.get("bytes_ratio_fp32_over_int8")
        for key, value in (("tolerance", tolerance),
                           ("max_logit_abs_error", error),
                           ("bytes_ratio_fp32_over_int8", ratio)):
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or value < 0:
                failures.append(f"'quantized.{key}' must be a non-negative "
                                f"number, got {value!r}")
        if not failures:
            if error > tolerance:
                failures.append(f"quantized.max_logit_abs_error {error:.6f} > "
                                f"tolerance {tolerance:.6f}")
            if ratio < HOTPATH_MIN_BYTES_RATIO:
                failures.append(f"quantized.bytes_ratio_fp32_over_int8 "
                                f"{ratio:.3f} < {HOTPATH_MIN_BYTES_RATIO}")
    rerank = record.get("rerank")
    if not isinstance(rerank, dict):
        failures.append("record has no 'rerank' object")
    else:
        before = rerank.get("hit_rate_before")
        after = rerank.get("hit_rate_after")
        delta = rerank.get("delta")
        readmitted = rerank.get("readmitted_rows")
        for key, value in (("hit_rate_before", before),
                           ("hit_rate_after", after)):
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or value < 0:
                failures.append(f"'rerank.{key}' must be a non-negative "
                                f"number, got {value!r}")
        if not isinstance(delta, (int, float)) or isinstance(delta, bool):
            failures.append(f"'rerank.delta' must be a number, got {delta!r}")
        if not isinstance(readmitted, int) or isinstance(readmitted, bool) \
                or readmitted < 0:
            failures.append(f"'rerank.readmitted_rows' must be a non-negative "
                            f"integer, got {readmitted!r}")
        if not failures:
            if after < before:
                failures.append(f"rerank.hit_rate_after {after:.3f} < "
                                f"hit_rate_before {before:.3f} — the re-rank "
                                f"made the cache WORSE")
            if delta < 0:
                failures.append(f"rerank.delta {delta:.3f} < 0")
    if failures:
        return failures, None
    ok = (f"quantized err {quantized['max_logit_abs_error']:.6f} <= "
          f"{quantized['tolerance']:.2f} at "
          f"{quantized['bytes_ratio_fp32_over_int8']:.2f}x fewer bytes; "
          f"rerank hit rate {rerank['hit_rate_before']:.3f} -> "
          f"{rerank['hit_rate_after']:.3f}")
    return [], ok


def check_sharded(record, tolerance):
    """Returns (failures, ok_message) for the shard-scaling gates:
    every shard's publisher must hold the point's staleness budget with
    zero breaches, the halo-plane fractions must be sane, and the
    1-shard degenerate points must show no cross-shard traffic at all
    (a non-zero owner fetch on one shard means the routing tier is
    misclassifying local rows as remote)."""
    failures = []
    worst_ms = 0.0
    for point in record.get("points", []):
        name = point.get("name", "?")
        for key in ("halo_hit_rate", "cross_shard_gather_fraction"):
            value = point.get(key)
            if isinstance(value, (int, float)) and not 0.0 <= value <= 1.0:
                failures.append(f"{name}: {key} {value!r} outside [0, 1]")
        if point.get("shards") == 1:
            for key in ("halo_hits", "cross_shard_rows"):
                if point.get(key) != 0:
                    failures.append(f"{name}: 1-shard point has {key}="
                                    f"{point.get(key)!r} (must be 0 — nothing "
                                    f"is remote to a single shard)")
            if point.get("edge_cut_fraction") != 0:
                failures.append(f"{name}: 1-shard point has edge_cut_fraction="
                                f"{point.get('edge_cut_fraction')!r} (must "
                                f"be 0)")
        budget_ms = point.get("slo_budget_ms", 0.0)
        if budget_ms <= 0.0:
            continue
        limit_ms = budget_ms * tolerance
        for entry in point.get("per_shard", []):
            shard = entry.get("shard", "?")
            staleness = entry.get("publisher_worst_staleness_ms", 0.0)
            breaches = entry.get("publisher_breaches", 0)
            worst_ms = max(worst_ms, staleness)
            if staleness > limit_ms:
                failures.append(f"{name} shard {shard}: "
                                f"publisher_worst_staleness_ms "
                                f"{staleness:.3f} > {limit_ms:.3f} (budget "
                                f"{budget_ms:.3f} x tolerance {tolerance})")
            if breaches != 0:
                failures.append(f"{name} shard {shard}: publisher_breaches "
                                f"{breaches} != 0")
    if failures:
        return failures, None
    return [], (f"per-shard publishers held their budgets (worst staleness "
                f"{worst_ms:.3f} ms across all shards), 1-shard points "
                f"cross-shard-clean")


def check_slo(record, tolerance):
    """Returns (failures, ok_message) for the streaming publisher SLO."""
    points = {p.get("name"): p for p in record.get("points", [])}
    point = points.get(SLO_POINT)
    if point is None:
        return [f"record has no '{SLO_POINT}' point"], None

    budget_ms = point.get("slo_budget_ms", 0.0)
    worst_ms = point.get("publisher_worst_staleness_ms")
    breaches = point.get("publisher_breaches")
    if budget_ms <= 0.0 or worst_ms is None or breaches is None:
        return [f"'{SLO_POINT}' is missing SLO fields (slo_budget_ms="
                f"{budget_ms}, worst={worst_ms}, breaches={breaches})"], None

    limit_ms = budget_ms * tolerance
    failures = []
    if worst_ms > limit_ms:
        failures.append(f"publisher_worst_staleness_ms {worst_ms:.3f} > "
                        f"{limit_ms:.3f} (budget {budget_ms:.3f} x tolerance "
                        f"{tolerance})")
    if breaches != 0:
        failures.append(f"publisher_breaches {breaches} != 0")
    ok = (f"worst staleness {worst_ms:.3f} ms <= {limit_ms:.3f} ms, "
          f"breaches 0")
    return failures, ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("records", nargs="*", default=["BENCH_streaming.json"],
                        help="paths to bench records (serving and/or streaming)")
    parser.add_argument("--tolerance", type=float, default=1.0,
                        help="budget multiplier before comparison (default 1.0)")
    args = parser.parse_args()

    status = 0
    for path in args.records:
        try:
            with open(path, encoding="utf-8") as f:
                record = json.load(f)
        except (OSError, ValueError) as err:
            print(f"check_bench_slo: cannot read {path}: {err}", file=sys.stderr)
            status = 1
            continue

        schema_failures = check_schema(path, record)
        if schema_failures:
            print(f"check_bench_slo: {path} fails the schema gate:",
                  file=sys.stderr)
            for failure in schema_failures:
                print(f"  - {failure}", file=sys.stderr)
            status = 1
            continue
        kind = record["bench"]
        print(f"check_bench_slo: {path} schema ok "
              f"({kind}, {len(record['points'])} points)")

        if kind == "hotpath":
            hotpath_failures, hotpath_ok = check_hotpath(record)
            if hotpath_failures:
                print(f"check_bench_slo: {path} fails the hot-path gate:",
                      file=sys.stderr)
                for failure in hotpath_failures:
                    print(f"  - {failure}", file=sys.stderr)
                status = 1
            else:
                print(f"check_bench_slo: {path} {hotpath_ok}")
            continue
        if kind == "sharded":
            sharded_failures, sharded_ok = check_sharded(record, args.tolerance)
            if sharded_failures:
                print(f"check_bench_slo: {path} fails the sharded gate:",
                      file=sys.stderr)
                for failure in sharded_failures:
                    print(f"  - {failure}", file=sys.stderr)
                status = 1
            else:
                print(f"check_bench_slo: {path} {sharded_ok}")
            continue
        if kind != "streaming":
            continue
        # The streaming bench embeds its shard-scaling sweep as a nested
        # "sharded" record; a regenerated record that silently dropped it
        # would un-gate the sharded plane, so its absence is a failure.
        sharded_record = record.get("sharded")
        if not isinstance(sharded_record, dict):
            print(f"check_bench_slo: {path} has no nested 'sharded' record "
                  f"(regenerate with bench_streaming)", file=sys.stderr)
            status = 1
        else:
            sub_failures = check_schema(path, sharded_record)
            if sub_failures:
                print(f"check_bench_slo: {path} nested sharded record fails "
                      f"the schema gate:", file=sys.stderr)
                for failure in sub_failures:
                    print(f"  - {failure}", file=sys.stderr)
                status = 1
            else:
                print(f"check_bench_slo: {path} nested sharded schema ok "
                      f"({len(sharded_record['points'])} points)")
                sharded_failures, sharded_ok = check_sharded(sharded_record,
                                                             args.tolerance)
                if sharded_failures:
                    print(f"check_bench_slo: {path} fails the sharded gate:",
                          file=sys.stderr)
                    for failure in sharded_failures:
                        print(f"  - {failure}", file=sys.stderr)
                    status = 1
                else:
                    print(f"check_bench_slo: {path} {sharded_ok}")
        slo_failures, ok = check_slo(record, args.tolerance)
        if slo_failures:
            print(f"check_bench_slo: '{SLO_POINT}' violates the publisher SLO:",
                  file=sys.stderr)
            for failure in slo_failures:
                print(f"  - {failure}", file=sys.stderr)
            print("  (a publish stalling behind compaction again? see ISSUE-5 /"
                  " StreamingGraph::compact's fold state machine)",
                  file=sys.stderr)
            status = 1
        else:
            print(f"check_bench_slo: '{SLO_POINT}' ok — {ok}")
        overhead_failures, overhead_ok = check_overhead(record, args.tolerance)
        if overhead_failures:
            print(f"check_bench_slo: {path} fails the observability-overhead "
                  f"gate:", file=sys.stderr)
            for failure in overhead_failures:
                print(f"  - {failure}", file=sys.stderr)
            status = 1
        else:
            print(f"check_bench_slo: {path} {overhead_ok}")
    return status


if __name__ == "__main__":
    sys.exit(main())


