#!/usr/bin/env python3
"""Gate the committed BENCH_streaming.json on the publisher's SLO.

The non-blocking-fold work (ISSUE-5) tightened the streaming staleness
bound to the publisher budget alone: `sustained_churn_slo` must report
zero breaches and a worst completion-time staleness within its budget.
This script fails loudly if a regression (e.g. publishes stalling
behind compaction folds again) sneaks back into a regenerated record.

Usage:
    tools/check_bench_slo.py [BENCH_streaming.json] [--tolerance FACTOR]

`--tolerance` scales the budget before comparing (default 1.0: the
record must meet the budget exactly as the acceptance criteria state).
Exit status: 0 on pass, 1 on SLO violation or a malformed record.
"""

import argparse
import json
import sys

POINT = "sustained_churn_slo"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("record", nargs="?", default="BENCH_streaming.json",
                        help="path to the streaming bench record")
    parser.add_argument("--tolerance", type=float, default=1.0,
                        help="budget multiplier before comparison (default 1.0)")
    args = parser.parse_args()

    try:
        with open(args.record, encoding="utf-8") as f:
            record = json.load(f)
    except (OSError, ValueError) as err:
        print(f"check_bench_slo: cannot read {args.record}: {err}", file=sys.stderr)
        return 1

    points = {p.get("name"): p for p in record.get("points", [])}
    point = points.get(POINT)
    if point is None:
        print(f"check_bench_slo: {args.record} has no '{POINT}' point", file=sys.stderr)
        return 1

    budget_ms = point.get("slo_budget_ms", 0.0)
    worst_ms = point.get("publisher_worst_staleness_ms")
    breaches = point.get("publisher_breaches")
    if budget_ms <= 0.0 or worst_ms is None or breaches is None:
        print(f"check_bench_slo: '{POINT}' is missing SLO fields "
              f"(slo_budget_ms={budget_ms}, worst={worst_ms}, breaches={breaches})",
              file=sys.stderr)
        return 1

    limit_ms = budget_ms * args.tolerance
    failures = []
    if worst_ms > limit_ms:
        failures.append(f"publisher_worst_staleness_ms {worst_ms:.3f} > "
                        f"{limit_ms:.3f} (budget {budget_ms:.3f} x tolerance {args.tolerance})")
    if breaches != 0:
        failures.append(f"publisher_breaches {breaches} != 0")

    if failures:
        print(f"check_bench_slo: '{POINT}' violates the publisher SLO:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print("  (a publish stalling behind compaction again? see ISSUE-5 / "
              "StreamingGraph::compact's fold state machine)", file=sys.stderr)
        return 1

    print(f"check_bench_slo: '{POINT}' ok — worst staleness "
          f"{worst_ms:.3f} ms <= {limit_ms:.3f} ms, breaches 0")
    return 0


if __name__ == "__main__":
    sys.exit(main())
