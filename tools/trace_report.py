#!/usr/bin/env python3
"""Per-stage latency attribution from the observability plane's output.

Two input modes, combinable:

  --flight FILE   a flight-recorder bundle (--flight-record-out).  Its
                  exemplar ring holds the FULL critical path of the
                  slowest requests the run admitted — one row per
                  request with queue / sample / gather / forward /
                  reply milliseconds, plus the share of the total each
                  stage claims and which stage dominates.
  --jsonl FILE    a telemetry JSON-lines dump (--metrics-out).  The
                  last snapshot line carries the aggregate view: the
                  latency and queue-wait histograms (the coarse
                  queue-vs-compute split), trace-ring occupancy, and
                  the journal's lifecycle events, which are replayed
                  as a timeline.

Typical post-mortem workflow: the watchdog trips, the flight record
lands, and

    tools/trace_report.py --flight flight.json

answers "where did the slow requests spend their time" without
reattaching anything to the process.

Exit status: 0 on success, 1 when an input cannot be read or holds no
usable data.
"""

import argparse
import json
import sys

STAGES = ["queue", "sample", "gather", "forward", "reply"]


def fmt_ms(value):
    return "-" if value is None else f"{value:9.3f}"


def report_flight(path):
    try:
        with open(path, encoding="utf-8") as f:
            record = json.load(f)
    except (OSError, ValueError) as err:
        print(f"trace_report: cannot read {path}: {err}", file=sys.stderr)
        return False

    print(f"flight record: {path}")
    print(f"  reason: {record.get('reason', '?')}  "
          f"trips: {len(record.get('trips', []))}  "
          f"suppressed: {record.get('suppressed_trips', 0)}")
    for trip in record.get("trips", []):
        print(f"    trip @ {trip.get('t_ns', 0) / 1e9:.3f}s  "
              f"{trip.get('reason', '?')}")

    exemplars = record.get("exemplars", {})
    slowest = exemplars.get("slowest", [])
    print(f"  exemplars: {exemplars.get('admitted', 0)} admitted of "
          f"{exemplars.get('offered', 0)} offered "
          f"(admission threshold {exemplars.get('threshold_ms', 0):.3f} ms)")
    if not slowest:
        print("  no exemplar traces retained")
    else:
        header = (f"  {'request':>8} {'total ms':>9} "
                  + " ".join(f"{s + ' ms':>9}" for s in STAGES)
                  + f"  {'dominant':<8} share")
        print()
        print(header)
        print("  " + "-" * (len(header) - 2))
        totals = {s: 0.0 for s in STAGES}
        attributed = 0
        for trace in sorted(slowest, key=lambda t: -t.get("total_ms", 0.0)):
            stages = trace.get("stages", {})
            values = {s: stages.get(f"{s}_ms") for s in STAGES}
            total = trace.get("total_ms", 0.0)
            known = {s: v for s, v in values.items() if v is not None}
            dominant, share = "?", 0.0
            if known and total > 0:
                dominant = max(known, key=known.get)
                share = known[dominant] / total
                for s, v in known.items():
                    totals[s] += v
                attributed += 1
            print(f"  {trace.get('request_id', '?'):>8} {total:9.3f} "
                  + " ".join(fmt_ms(values[s]) for s in STAGES)
                  + f"  {dominant:<8} {share:5.1%}")
        if attributed:
            grand = sum(totals.values())
            print()
            print("  mean share across exemplars: "
                  + "  ".join(f"{s} {totals[s] / grand:5.1%}" for s in STAGES
                              if grand > 0))

    hearts = record.get("heartbeats", [])
    if hearts:
        print()
        print(f"  {'thread':<24} {'age ms':>9} {'hint ms':>9} "
              f"{'beats':>7} state")
        for h in hearts:
            state = ("retired" if h.get("retired")
                     else "idle" if h.get("idle") else "busy")
            age = h.get("age_ms", -1.0)
            print(f"  {h.get('name', '?'):<24} "
                  f"{'never' if age < 0 else f'{age:9.1f}':>9} "
                  f"{h.get('interval_hint_ms', 0):9.1f} "
                  f"{h.get('beats', 0):>7} {state}")
    return True


def report_jsonl(path):
    snapshot = None
    events = []
    try:
        with open(path, encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except ValueError as err:
                    print(f"trace_report: {path}:{line_no}: bad JSON line: "
                          f"{err}", file=sys.stderr)
                    return False
                if obj.get("type") == "snapshot":
                    snapshot = obj
                elif obj.get("type") == "event":
                    events.append(obj)
    except OSError as err:
        print(f"trace_report: cannot read {path}: {err}", file=sys.stderr)
        return False
    if snapshot is None:
        print(f"trace_report: {path} holds no snapshot line",
              file=sys.stderr)
        return False

    print(f"telemetry dump: {path} "
          f"(last snapshot reason: {snapshot.get('reason', '?')})")
    hists = snapshot.get("histograms", {})
    if hists:
        print(f"  {'histogram':<32} {'count':>8} {'mean ms':>9} "
              f"{'p50 ms':>9} {'p99 ms':>9} {'max ms':>9}")
        for name in sorted(hists):
            h = hists[name]
            print(f"  {name:<32} {h.get('count', 0):>8} "
                  f"{h.get('mean_ms', 0):9.3f} {h.get('p50_ms', 0):9.3f} "
                  f"{h.get('p99_ms', 0):9.3f} {h.get('max_ms', 0):9.3f}")
        lat = hists.get("serving.latency_ms")
        queue = hists.get("serving.queue_wait_ms")
        if lat and queue and lat.get("mean_ms", 0) > 0:
            queue_share = queue.get("mean_ms", 0) / lat["mean_ms"]
            print(f"  coarse split: queue {queue_share:5.1%} of mean latency, "
                  f"service {1 - queue_share:5.1%}")
    trace = snapshot.get("trace", {})
    if trace:
        print(f"  trace rings: {trace.get('recorded', 0)} spans recorded, "
              f"{trace.get('retained', 0)} retained, "
              f"{trace.get('dropped', 0)} dropped; "
              f"journal dropped {trace.get('journal_dropped', 0)}")
    if events:
        print(f"  events ({len(events)}):")
        for event in events[-20:]:
            print(f"    @ {event.get('t_ns', 0) / 1e9:.3f}s  "
                  f"{event.get('kind', '?'):<16} {event.get('detail', '')}")
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flight", action="append", default=[],
                        help="flight-recorder bundle(s) to report on")
    parser.add_argument("--jsonl", action="append", default=[],
                        help="telemetry JSON-lines dump(s) to report on")
    args = parser.parse_args()
    if not args.flight and not args.jsonl:
        parser.error("pass --flight FILE and/or --jsonl FILE")

    ok = True
    first = True
    for path in args.flight:
        if not first:
            print()
        first = False
        ok = report_flight(path) and ok
    for path in args.jsonl:
        if not first:
            print()
        first = False
        ok = report_jsonl(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
