#!/usr/bin/env python3
"""Diff two BENCH_*.json records with tolerance bands.

Compares a candidate record (e.g. freshly regenerated) against a
baseline (e.g. the committed one) and fails when they disagree beyond
what run-to-run noise explains:

  * points are matched by "name"; a point present in only one record is
    a structural violation,
  * strings and booleans must match exactly (config echoes: a point
    that silently changed its delete fraction is not the same point),
  * numbers must agree within |a - b| <= abs_tol + rel_tol * max(|a|, |b|)
    — wall-clock numbers (qps, latencies, ingest rates) are
    machine-condition dependent, so the default bands are wide; tighten
    them when diffing runs from the same session,
  * null and MISSING are equivalent (the bench omits publisher_* fields
    on publisher-less points; an explicit null means the same thing),
    but a present non-null value on one side with nothing on the other
    is a violation.

Top-level scalar fields are compared the same way; the "points" array
is matched by name and the telemetry_overhead / diagnosis_overhead
objects field-by-field.  Fields whose run-to-run variance is
unbounded by design can be exempted with --ignore.

Usage:
    tools/bench_diff.py BASELINE.json CANDIDATE.json \
        [--rel-tol 0.5] [--abs-tol 1.0] [--ignore key ...]

Exit status: 0 when every field agrees within tolerance, 1 otherwise.
A self-diff (same file twice) always passes at any tolerance — CI runs
exactly that as a smoke test of this script.
"""

import argparse
import json
import sys

# Fields that restate the environment rather than measure the system;
# a diff across machines should not fail on them.
DEFAULT_IGNORE = {"note", "source"}


def numbers_agree(a, b, rel_tol, abs_tol):
    return abs(a - b) <= abs_tol + rel_tol * max(abs(a), abs(b))


def diff_value(path, base, cand, rel_tol, abs_tol, ignore, failures):
    """Appends human-readable violation strings to `failures`."""
    key = path.rsplit(".", 1)[-1]
    if key in ignore:
        return
    # null == missing: normalize both to None before shape checks.
    if base is None and cand is None:
        return
    if base is None or cand is None:
        failures.append(f"{path}: {json.dumps(base)} vs {json.dumps(cand)} "
                        f"(present on one side only)")
        return
    if isinstance(base, bool) or isinstance(cand, bool):
        if base is not cand:
            failures.append(f"{path}: bool {base} vs {cand}")
        return
    if isinstance(base, (int, float)) and isinstance(cand, (int, float)):
        if not numbers_agree(float(base), float(cand), rel_tol, abs_tol):
            failures.append(f"{path}: {base} vs {cand} exceeds tolerance "
                            f"(rel {rel_tol}, abs {abs_tol})")
        return
    if isinstance(base, str) and isinstance(cand, str):
        if base != cand:
            failures.append(f"{path}: {base!r} vs {cand!r}")
        return
    if isinstance(base, dict) and isinstance(cand, dict):
        for k in sorted(set(base) | set(cand)):
            diff_value(f"{path}.{k}", base.get(k), cand.get(k),
                       rel_tol, abs_tol, ignore, failures)
        return
    if isinstance(base, list) and isinstance(cand, list):
        if len(base) != len(cand):
            failures.append(f"{path}: list length {len(base)} vs {len(cand)}")
            return
        for i, (bv, cv) in enumerate(zip(base, cand)):
            diff_value(f"{path}[{i}]", bv, cv, rel_tol, abs_tol, ignore,
                       failures)
        return
    failures.append(f"{path}: type mismatch "
                    f"{type(base).__name__} vs {type(cand).__name__}")


def diff_records(base, cand, rel_tol, abs_tol, ignore):
    failures = []
    base_points = {p.get("name"): p for p in base.get("points", [])}
    cand_points = {p.get("name"): p for p in cand.get("points", [])}
    for name in sorted(set(base_points) | set(cand_points)):
        if name not in base_points:
            failures.append(f"points[{name}]: only in candidate")
        elif name not in cand_points:
            failures.append(f"points[{name}]: only in baseline")
        else:
            diff_value(f"points[{name}]", base_points[name],
                       cand_points[name], rel_tol, abs_tol, ignore, failures)
    for key in sorted((set(base) | set(cand)) - {"points"}):
        diff_value(key, base.get(key), cand.get(key), rel_tol, abs_tol,
                   ignore, failures)
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline record (e.g. committed)")
    parser.add_argument("candidate", help="candidate record (e.g. fresh run)")
    parser.add_argument("--rel-tol", type=float, default=0.5,
                        help="relative tolerance band for numbers "
                             "(default 0.5 = 50%%)")
    parser.add_argument("--abs-tol", type=float, default=1.0,
                        help="absolute slack added to every numeric band, "
                             "absorbs near-zero jitter (default 1.0)")
    parser.add_argument("--ignore", nargs="*", default=[],
                        help="extra field names (leaf keys) to skip")
    args = parser.parse_args()

    records = []
    for path in (args.baseline, args.candidate):
        try:
            with open(path, encoding="utf-8") as f:
                records.append(json.load(f))
        except (OSError, ValueError) as err:
            print(f"bench_diff: cannot read {path}: {err}", file=sys.stderr)
            return 1

    ignore = DEFAULT_IGNORE | set(args.ignore)
    failures = diff_records(records[0], records[1], args.rel_tol,
                            args.abs_tol, ignore)
    if failures:
        print(f"bench_diff: {args.candidate} diverges from {args.baseline}:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    n_points = len(records[0].get("points", []))
    print(f"bench_diff: {args.candidate} agrees with {args.baseline} "
          f"({n_points} points, rel_tol {args.rel_tol}, "
          f"abs_tol {args.abs_tol})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
