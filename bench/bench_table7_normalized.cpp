// Regenerates Table VII: epoch time normalised by platform peak
// performance (seconds x TFLOPS) — the paper's design-efficiency metric.
// HyScale's platform is 2x EPYC 7763 + 4x U250 = 9.6 TFLOPS.
#include <cstdio>

#include "baselines/distdgl.hpp"
#include "baselines/p3.hpp"
#include "baselines/pagraph.hpp"
#include "bench_util.hpp"
#include "common/strutil.hpp"
#include "device/spec.hpp"
#include "runtime/hybrid_trainer.hpp"

using namespace hyscale;

namespace {

Seconds hyscale_epoch(const std::string& dataset, GnnKind kind, const std::vector<int>& fanouts,
                      int hidden) {
  Dataset ds = bench::scaled_dataset(dataset);
  ds.info.f1 = hidden;
  HybridTrainerConfig config = bench::sim_config(kind);
  config.fanouts = fanouts;
  HybridTrainer trainer(ds, cpu_fpga_platform(4), config);
  return bench::settled_epoch(trainer).epoch_time;
}

}  // namespace

int main() {
  bench::header("Table VII", "normalised epoch time (s x TFLOPS) vs state-of-the-art");
  const double ours_tflops = cpu_fpga_platform(4).total_tflops();
  std::printf("This Work platform: %.1f TFLOPS\n", ours_tflops);

  const std::vector<int> widths = {12, 20, 14, 14, 14};
  bench::row({"Dataset", "System", "base(sxTF)", "ours(sxTF)", "norm speedup"}, widths);

  struct Case {
    const char* system;
    const char* ds;
    GnnKind kind;
    std::vector<int> fanouts;
    int hidden;
    double paper_norm_speedup;
  };
  PaGraphBaseline pagraph;
  P3Baseline p3;
  DistDglBaseline distdgl;

  const std::vector<Case> cases = {
      {"PaGraph", "ogbn-products", GnnKind::kGcn, {25, 10}, 256, 52.2},
      {"PaGraph", "ogbn-papers100M", GnnKind::kGcn, {25, 10}, 256, 82.5},
      {"P3", "ogbn-products", GnnKind::kSage, {25, 10}, 32, 68.0},
      {"P3", "ogbn-papers100M", GnnKind::kSage, {25, 10}, 32, 81.8},
      {"DistDGLv2", "ogbn-products", GnnKind::kSage, {15, 10, 5}, 256, 10.1},
      {"DistDGLv2", "ogbn-papers100M", GnnKind::kSage, {15, 10, 5}, 256, 64.2},
  };
  for (const Case& c : cases) {
    BaselineWorkload w;
    w.dataset = dataset_info(c.ds);
    w.model = c.kind;
    w.fanouts = c.fanouts;
    w.hidden_dim = c.hidden;
    BaselineResult base;
    if (std::string(c.system) == "PaGraph") base = pagraph.evaluate(w);
    else if (std::string(c.system) == "P3") base = p3.evaluate(w);
    else base = distdgl.evaluate(w);

    const Seconds ours = hyscale_epoch(c.ds, c.kind, c.fanouts, c.hidden);
    const double ours_norm = ours * ours_tflops;
    bench::row({c.ds, c.system, format_double(base.normalized_epoch(), 1),
                format_double(ours_norm, 1),
                format_double(base.normalized_epoch() / ours_norm, 1) + "x (paper ~" +
                    format_double(c.paper_norm_speedup, 0) + "x)"},
               widths);
  }
  std::printf("\n(paper: 21x-71x geo-mean normalised speedup across systems)\n");
  return 0;
}
