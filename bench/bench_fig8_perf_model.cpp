// Regenerates Fig. 8: predicted (performance model, §V) vs actual
// (runtime simulation with launch/flush overheads and sampling jitter)
// epoch time on MAG240M (homo), for GCN and GraphSAGE, 1-4 FPGAs.
//
// The paper reports 5-14% average prediction error; the same two
// unmodelled effects (kernel-launch set-up, pipeline flushing) drive the
// gap here.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strutil.hpp"
#include "device/spec.hpp"
#include "runtime/hybrid_trainer.hpp"

using namespace hyscale;

int main() {
  bench::header("Figure 8", "predicted vs actual epoch time, MAG240M (homo), CPU-FPGA");
  const Dataset& ds = bench::scaled_dataset("MAG240M (homo)");

  const std::vector<int> widths = {10, 8, 14, 14, 10};
  for (GnnKind kind : bench::model_kinds()) {
    std::printf("\n%s:\n", gnn_kind_name(kind));
    bench::row({"Model", "#FPGAs", "Predicted(s)", "Actual(s)", "Error"}, widths);
    for (int k : {1, 2, 3, 4}) {
      HybridTrainerConfig config = bench::sim_config(kind);
      config.drm = false;  // Fig. 8 validates the model, not the optimizer
      HybridTrainer trainer(ds, cpu_fpga_platform(k), config);
      const Seconds predicted = trainer.predicted_epoch_time();
      const Seconds actual = trainer.train_epoch().epoch_time;
      const double error = (actual - predicted) / actual * 100.0;
      bench::row({gnn_kind_name(kind), std::to_string(k), format_double(predicted, 2),
                  format_double(actual, 2), format_double(error, 1) + "%"},
                 widths);
    }
  }
  std::printf("\n(paper: prediction error 5-14%% on average)\n");
  return 0;
}
