// Regenerates Fig. 10: cross-platform epoch-time comparison —
// multi-GPU PyG baseline vs hybrid CPU+GPU vs hybrid CPU+FPGA,
// three datasets x two models, 4 accelerators each.
//
// Paper headline numbers: CPU+GPU up to 2.08x over the PyG baseline;
// CPU+FPGA 8.87x-12.6x.
#include <cstdio>

#include "baselines/pyg.hpp"
#include "bench_util.hpp"
#include "common/strutil.hpp"
#include "device/spec.hpp"
#include "runtime/hybrid_trainer.hpp"

using namespace hyscale;

namespace {

struct PaperSpeedups {
  double cpu_gpu;
  double cpu_fpga;
};

// Fig. 10's annotated speedups, for side-by-side reporting.
PaperSpeedups paper_reference(const std::string& dataset, GnnKind kind) {
  if (dataset == "ogbn-products") return kind == GnnKind::kGcn ? PaperSpeedups{1.79, 8.87}
                                                               : PaperSpeedups{1.87, 9.98};
  if (dataset == "ogbn-papers100M") return kind == GnnKind::kGcn ? PaperSpeedups{2.08, 12.6}
                                                                 : PaperSpeedups{2.01, 10.5};
  return kind == GnnKind::kGcn ? PaperSpeedups{1.45, 11.5} : PaperSpeedups{1.48, 9.46};
}

}  // namespace

int main() {
  bench::header("Figure 10", "cross-platform comparison (4 accelerators)");
  const std::vector<int> widths = {18, 6, 12, 12, 12, 14, 14};
  bench::row({"Dataset", "Model", "MultiGPU(s)", "CPU+GPU(s)", "CPU+FPGA(s)", "spdup(GPU)",
              "spdup(FPGA)"},
             widths);

  PygMultiGpuBaseline pyg(cpu_gpu_platform(4));
  for (const auto& name : bench::dataset_names()) {
    const Dataset& ds = bench::scaled_dataset(name);
    for (GnnKind kind : bench::model_kinds()) {
      BaselineWorkload workload;
      workload.dataset = ds.info;
      workload.model = kind;
      const Seconds t_pyg = pyg.evaluate(workload).epoch_time;

      HybridTrainer gpu_trainer(ds, cpu_gpu_platform(4), bench::sim_config(kind));
      const Seconds t_gpu = bench::settled_epoch(gpu_trainer).epoch_time;

      HybridTrainer fpga_trainer(ds, cpu_fpga_platform(4), bench::sim_config(kind));
      const Seconds t_fpga = bench::settled_epoch(fpga_trainer).epoch_time;

      const PaperSpeedups ref = paper_reference(name, kind);
      bench::row({name, gnn_kind_name(kind), format_double(t_pyg, 2), format_double(t_gpu, 2),
                  format_double(t_fpga, 2),
                  format_double(t_pyg / t_gpu, 2) + "x (" + format_double(ref.cpu_gpu, 2) + ")",
                  format_double(t_pyg / t_fpga, 2) + "x (" + format_double(ref.cpu_fpga, 2) + ")"},
                 widths);
    }
  }
  std::printf("\n(parenthesised values: the paper's reported speedups)\n");
  return 0;
}
