// Regenerates Table VI: epoch time (s) comparison with the state of the
// art.  For each comparison HyScale-GNN is configured with the SAME
// model configuration (fanout, hidden dim) as the system it is compared
// against (Table V), running on 4 U250 FPGAs on one node.
#include <cmath>
#include <cstdio>

#include "baselines/distdgl.hpp"
#include "baselines/p3.hpp"
#include "baselines/pagraph.hpp"
#include "bench_util.hpp"
#include "common/strutil.hpp"
#include "device/spec.hpp"
#include "runtime/hybrid_trainer.hpp"

using namespace hyscale;

namespace {

// Runs HyScale on the CPU-FPGA platform with a comparator's model config.
Seconds hyscale_epoch(const std::string& dataset, GnnKind kind, const std::vector<int>& fanouts,
                      int hidden) {
  Dataset ds = bench::scaled_dataset(dataset);  // copy: we override f1
  ds.info.f1 = hidden;
  HybridTrainerConfig config = bench::sim_config(kind);
  config.fanouts = fanouts;
  HybridTrainer trainer(ds, cpu_fpga_platform(4), config);
  return bench::settled_epoch(trainer).epoch_time;
}

double geo_mean(const std::vector<double>& xs) {
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace

int main() {
  bench::header("Table VI", "epoch time (s) comparison with state-of-the-art");
  const std::vector<int> widths = {12, 20, 12, 12, 14};

  // ---- vs PaGraph: sample (25,10), hidden 256.
  {
    PaGraphBaseline pagraph;
    std::printf("\nvs PaGraph (1 node, 8x V100; fanout 25,10; hidden 256)\n");
    bench::row({"Dataset", "Model", "PaGraph(s)", "ThisWork(s)", "speedup"}, widths);
    std::vector<double> speedups;
    struct Row { const char* ds; GnnKind kind; double paper_base, paper_ours; };
    for (const Row& r : {Row{"ogbn-products", GnnKind::kGcn, 1.18, 0.27},
                         Row{"ogbn-products", GnnKind::kSage, 0.25, 0.49},
                         Row{"ogbn-papers100M", GnnKind::kGcn, 4.00, 0.58},
                         Row{"ogbn-papers100M", GnnKind::kSage, 1.18, 1.91}}) {
      BaselineWorkload w;
      w.dataset = dataset_info(r.ds);
      w.model = r.kind;
      const Seconds base = pagraph.evaluate(w).epoch_time;
      const Seconds ours = hyscale_epoch(r.ds, r.kind, {25, 10}, 256);
      speedups.push_back(base / ours);
      bench::row({r.ds, gnn_kind_name(r.kind), format_double(base, 2), format_double(ours, 2),
                  format_double(base / ours, 2) + "x (" +
                      format_double(r.paper_base / r.paper_ours, 2) + ")"},
                 widths);
    }
    std::printf("geo-mean speedup: %sx (paper: 1.76x)\n", format_double(geo_mean(speedups), 2).c_str());
  }

  // ---- vs P3: sample (25,10), hidden 32.
  {
    P3Baseline p3;
    std::printf("\nvs P3 (4 nodes x 4 P100; fanout 25,10; hidden 32)\n");
    bench::row({"Dataset", "Model", "P3(s)", "ThisWork(s)", "speedup"}, widths);
    std::vector<double> speedups;
    struct Row { const char* ds; GnnKind kind; double paper_base, paper_ours; };
    for (const Row& r : {Row{"ogbn-products", GnnKind::kGcn, 1.11, 0.27},
                         Row{"ogbn-products", GnnKind::kSage, 1.23, 0.28},
                         Row{"ogbn-papers100M", GnnKind::kGcn, 2.61, 0.57},
                         Row{"ogbn-papers100M", GnnKind::kSage, 3.11, 0.59}}) {
      BaselineWorkload w;
      w.dataset = dataset_info(r.ds);
      w.model = r.kind;
      w.hidden_dim = 32;
      const Seconds base = p3.evaluate(w).epoch_time;
      const Seconds ours = hyscale_epoch(r.ds, r.kind, {25, 10}, 32);
      speedups.push_back(base / ours);
      bench::row({r.ds, gnn_kind_name(r.kind), format_double(base, 2), format_double(ours, 2),
                  format_double(base / ours, 2) + "x (" +
                      format_double(r.paper_base / r.paper_ours, 2) + ")"},
                 widths);
    }
    std::printf("geo-mean speedup: %sx (paper: 4.57x)\n", format_double(geo_mean(speedups), 2).c_str());
  }

  // ---- vs DistDGLv2: sample (15,10,5), hidden 256, SAGE only.
  {
    DistDglBaseline distdgl;
    std::printf("\nvs DistDGLv2 (8 nodes x 8 T4; fanout 15,10,5; hidden 256)\n");
    bench::row({"Dataset", "Model", "DistDGL(s)", "ThisWork(s)", "speedup"}, widths);
    std::vector<double> speedups;
    struct Row { const char* ds; double paper_base, paper_ours; };
    for (const Row& r : {Row{"ogbn-products", 0.30, 1.69},
                         Row{"ogbn-papers100M", 4.16, 3.67}}) {
      BaselineWorkload w;
      w.dataset = dataset_info(r.ds);
      w.model = GnnKind::kSage;
      w.fanouts = {15, 10, 5};
      const Seconds base = distdgl.evaluate(w).epoch_time;
      const Seconds ours = hyscale_epoch(r.ds, GnnKind::kSage, {15, 10, 5}, 256);
      speedups.push_back(base / ours);
      bench::row({r.ds, "GraphSAGE", format_double(base, 2), format_double(ours, 2),
                  format_double(base / ours, 2) + "x (" +
                      format_double(r.paper_base / r.paper_ours, 2) + ")"},
                 widths);
    }
    std::printf("geo-mean speedup: %sx (paper: 0.45x — DistDGLv2 uses 64 GPUs)\n",
                format_double(geo_mean(speedups), 2).c_str());
  }
  std::printf("\n(parenthesised values: speedups implied by the paper's Table VI)\n");
  return 0;
}
