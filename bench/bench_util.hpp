// Shared helpers for the table/figure reproduction harnesses.
//
// Every bench prints:
//   * a header identifying the paper artifact it regenerates,
//   * the same rows/series the paper reports (datasets x models),
//   * where available, the paper's reported value next to ours so
//     EXPERIMENTS.md can record paper-vs-measured directly.
#pragma once

#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/strutil.hpp"
#include "graph/datasets.hpp"
#include "nn/model.hpp"
#include "runtime/hybrid_trainer.hpp"

namespace hyscale::bench {

/// Minimal JSON emitter for machine-readable perf records
/// (BENCH_*.json): objects, arrays, and scalar fields, with the
/// key-ordering and quoting handled here so benches only state values.
class JsonWriter {
 public:
  std::string str() const { return out_; }

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  /// Starts a keyed object/array member (inside an object).
  void key(const std::string& name) {
    separate();
    out_ += '"' + escape(name) + "\":";
    pending_value_ = true;
  }

  void value(double v) { emit(format_double(v, 6)); }
  void value(std::int64_t v) { emit(std::to_string(v)); }
  void value(int v) { emit(std::to_string(v)); }
  void value(bool v) { emit(v ? "true" : "false"); }
  void value(const std::string& v) { emit('"' + escape(v) + '"'); }
  void value(const char* v) { value(std::string(v)); }

  template <typename T>
  void field(const std::string& name, T v) {
    key(name);
    value(v);
  }

  /// Writes the document to `path`; throws std::runtime_error on I/O
  /// failure.
  void write(const std::string& path) const {
    FILE* f = std::fopen(path.c_str(), "w");
    if (!f) throw std::runtime_error("JsonWriter: cannot open " + path);
    const bool wrote = std::fputs(out_.c_str(), f) >= 0 && std::fputc('\n', f) != EOF;
    if (std::fclose(f) != 0 || !wrote)
      throw std::runtime_error("JsonWriter: write failed for " + path);
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (unsigned char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += static_cast<char>(c);
          }
      }
    }
    return out;
  }
  void separate() {
    if (need_comma_) out_ += ',';
    need_comma_ = false;
  }
  void open(char c) {
    if (!pending_value_) separate();
    pending_value_ = false;
    out_ += c;
    need_comma_ = false;
  }
  void close(char c) {
    out_ += c;
    need_comma_ = true;
    pending_value_ = false;
  }
  void emit(const std::string& rendered) {
    if (!pending_value_) separate();
    pending_value_ = false;
    out_ += rendered;
    need_comma_ = true;
  }

  std::string out_;
  bool need_comma_ = false;
  bool pending_value_ = false;
};

inline void header(const std::string& artifact, const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), description.c_str());
  std::printf("================================================================\n");
}

inline void row(const std::vector<std::string>& cells, const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    line += pad_right(cells[i], static_cast<std::size_t>(i < widths.size() ? widths[i] : 14));
    line += "  ";
  }
  std::printf("%s\n", line.c_str());
}

/// The three evaluation datasets in paper order.
inline std::vector<std::string> dataset_names() {
  return {"ogbn-products", "ogbn-papers100M", "MAG240M (homo)"};
}

inline std::vector<GnnKind> model_kinds() { return {GnnKind::kGcn, GnnKind::kSage}; }

/// Materialised (scaled) datasets, built once and shared across benches
/// in the same process.
inline const Dataset& scaled_dataset(const std::string& name) {
  static std::map<std::string, Dataset> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    MaterializeOptions options;
    options.target_vertices = 1 << 11;
    options.label_signal = false;  // throughput benches skip learning
    it = cache.emplace(name, materialize_dataset(name, options)).first;
  }
  return it->second;
}

/// Standard simulated-training config used by the reproduction benches:
/// paper hyper-parameters, no real numerics (timing only).
inline HybridTrainerConfig sim_config(GnnKind kind) {
  HybridTrainerConfig config;
  config.model_kind = kind;
  config.fanouts = {25, 10};
  config.per_trainer_batch = 1024;
  config.real_compute = false;
  config.trajectory_cap = 0;
  return config;
}

/// Runs `settle` epochs to let DRM converge, then returns the epoch
/// report of one more epoch.
inline EpochReport settled_epoch(HybridTrainer& trainer, int settle = 2) {
  for (int i = 0; i < settle; ++i) trainer.train_epoch();
  return trainer.train_epoch();
}

}  // namespace hyscale::bench
