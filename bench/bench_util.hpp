// Shared helpers for the table/figure reproduction harnesses.
//
// Every bench prints:
//   * a header identifying the paper artifact it regenerates,
//   * the same rows/series the paper reports (datasets x models),
//   * where available, the paper's reported value next to ours so
//     EXPERIMENTS.md can record paper-vs-measured directly.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/strutil.hpp"
#include "graph/datasets.hpp"
#include "nn/model.hpp"
#include "runtime/hybrid_trainer.hpp"

namespace hyscale::bench {

inline void header(const std::string& artifact, const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), description.c_str());
  std::printf("================================================================\n");
}

inline void row(const std::vector<std::string>& cells, const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    line += pad_right(cells[i], static_cast<std::size_t>(i < widths.size() ? widths[i] : 14));
    line += "  ";
  }
  std::printf("%s\n", line.c_str());
}

/// The three evaluation datasets in paper order.
inline std::vector<std::string> dataset_names() {
  return {"ogbn-products", "ogbn-papers100M", "MAG240M (homo)"};
}

inline std::vector<GnnKind> model_kinds() { return {GnnKind::kGcn, GnnKind::kSage}; }

/// Materialised (scaled) datasets, built once and shared across benches
/// in the same process.
inline const Dataset& scaled_dataset(const std::string& name) {
  static std::map<std::string, Dataset> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    MaterializeOptions options;
    options.target_vertices = 1 << 11;
    options.label_signal = false;  // throughput benches skip learning
    it = cache.emplace(name, materialize_dataset(name, options)).first;
  }
  return it->second;
}

/// Standard simulated-training config used by the reproduction benches:
/// paper hyper-parameters, no real numerics (timing only).
inline HybridTrainerConfig sim_config(GnnKind kind) {
  HybridTrainerConfig config;
  config.model_kind = kind;
  config.fanouts = {25, 10};
  config.per_trainer_batch = 1024;
  config.real_compute = false;
  config.trajectory_cap = 0;
  return config;
}

/// Runs `settle` epochs to let DRM converge, then returns the epoch
/// report of one more epoch.
inline EpochReport settled_epoch(HybridTrainer& trainer, int settle = 2) {
  for (int i = 0; i < settle; ++i) trainer.train_epoch();
  return trainer.train_epoch();
}

}  // namespace hyscale::bench
