// Serving performance record: closed-loop load sessions against the
// online inference server at a few operating points (worker count x
// cache capacity), emitting BENCH_serving.json so later PRs have a
// latency/QPS/hit-rate trajectory to beat.
//
// The headline record is the largest configuration; per-point records
// keep the full sweep.  Wall-clock numbers, real sampling + gather +
// forward on the host.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/hyscale.hpp"

using namespace hyscale;

namespace {

struct OperatingPoint {
  std::string name;
  int workers;
  std::int64_t cache_rows;
  int clients;
};

struct PointResult {
  OperatingPoint point;
  LoadReport report;
};

}  // namespace

int main() {
  bench::header("BENCH serving", "online inference: dynamic batching + cached gathers");

  MaterializeOptions materialize;
  materialize.target_vertices = 1 << 11;
  const Dataset dataset = materialize_dataset("ogbn-products", materialize);

  HybridTrainerConfig train_config;
  train_config.fanouts = {5, 5};
  train_config.real_batch_total = 128;
  train_config.real_iterations_cap = 2;
  HybridTrainer trainer(dataset, cpu_fpga_platform(2), train_config);
  trainer.train_epoch();
  const ModelSnapshot snapshot(trainer.model());

  const std::vector<OperatingPoint> points = {
      {"1w_nocache", 1, 0, 4},
      {"2w_cache", 2, 512, 8},
      {"4w_cache", 4, 1024, 16},
  };

  bench::row({"config", "qps", "p50 ms", "p95 ms", "p99 ms", "batch", "hit rate", "rejected"},
             {12, 10, 10, 10, 10, 8, 10, 10});

  std::vector<PointResult> results;
  for (const OperatingPoint& point : points) {
    ServingConfig serving;
    serving.fanouts = {10, 5};
    serving.num_workers = point.workers;
    serving.cache_capacity_rows = point.cache_rows;
    serving.batch.max_batch_requests = 16;
    serving.batch.max_wait = 2e-3;
    serving.seed = 7;
    InferenceServer server(dataset, snapshot, serving);

    LoadGeneratorConfig load;
    load.num_clients = point.clients;
    load.requests_per_client = 64;
    load.seeds_per_request = 4;
    load.seed = 21;
    LoadGenerator generator(server, dataset, load);
    const LoadReport report = generator.run();

    bench::row({point.name, format_double(report.qps, 1),
                format_double(report.server.latency_p50 * 1e3, 3),
                format_double(report.server.latency_p95 * 1e3, 3),
                format_double(report.server.latency_p99 * 1e3, 3),
                format_double(report.server.mean_batch_requests, 2),
                format_double(report.server.cache_hit_rate, 3),
                std::to_string(report.rejected_submits)},
               {12, 10, 10, 10, 10, 8, 10, 10});
    results.push_back({point, report});
  }

  bench::JsonWriter json;
  json.begin_object();
  json.field("bench", "serving");
  json.field("dataset", dataset.info.name);
  json.field("materialized_vertices", static_cast<std::int64_t>(dataset.num_vertices()));
  json.field("fanouts", "10,5");
  json.key("points");
  json.begin_array();
  for (const PointResult& r : results) {
    json.begin_object();
    json.field("name", r.point.name);
    json.field("workers", r.point.workers);
    json.field("cache_rows", r.point.cache_rows);
    json.field("clients", r.point.clients);
    json.field("completed_requests", r.report.completed_requests);
    json.field("rejected_submits", r.report.rejected_submits);
    json.field("qps", r.report.qps);
    json.field("p50_ms", r.report.server.latency_p50 * 1e3);
    json.field("p95_ms", r.report.server.latency_p95 * 1e3);
    json.field("p99_ms", r.report.server.latency_p99 * 1e3);
    json.field("mean_batch_requests", r.report.server.mean_batch_requests);
    json.field("cache_hit_rate", r.report.server.cache_hit_rate);
    json.end_object();
  }
  json.end_array();
  const PointResult& headline = results.back();
  json.key("headline");
  json.begin_object();
  json.field("qps", headline.report.qps);
  json.field("p50_ms", headline.report.server.latency_p50 * 1e3);
  json.field("p99_ms", headline.report.server.latency_p99 * 1e3);
  json.field("cache_hit_rate", headline.report.server.cache_hit_rate);
  json.end_object();
  json.end_object();

  const std::string path = "BENCH_serving.json";
  json.write(path);
  std::printf("\nperf record written to %s\n", path.c_str());
  return 0;
}
