// Serving performance record: closed-loop load sessions against the
// online inference server at a few operating points (worker count x
// cache capacity), emitting BENCH_serving.json so later PRs have a
// latency/QPS/hit-rate trajectory to beat.
//
// Every reported number is read back from the telemetry plane: each
// point binds a Telemetry to the server and load generator, and the
// JSON record is built from one MetricsRegistry snapshot — the bench
// exercises the same instruments operators would export, instead of
// hand-copying private stats structs.  Latency percentiles therefore
// come from the shared fixed-bucket histogram (~15% bucket growth),
// not the exact reservoir — comparable within a record, and across
// records only at histogram resolution.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/hyscale.hpp"

using namespace hyscale;

namespace {

struct OperatingPoint {
  std::string name;
  int workers;
  std::int64_t cache_rows;
  int clients;
};

struct PointResult {
  OperatingPoint point;
  MetricsSnapshot snap;
};

double value_or(const MetricsSnapshot& snap, const std::string& name) {
  return snap.has(name) ? snap.value(name) : 0.0;
}

std::int64_t count_or(const MetricsSnapshot& snap, const std::string& name) {
  return static_cast<std::int64_t>(value_or(snap, name));
}

double safe_ratio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

double hit_rate(const MetricsSnapshot& snap) {
  const double hits = value_or(snap, "serving.cache_hits");
  const double misses = value_or(snap, "serving.cache_misses");
  return safe_ratio(hits, hits + misses);
}

double mean_batch(const MetricsSnapshot& snap) {
  return safe_ratio(value_or(snap, "serving.batch_requests_total"),
                    value_or(snap, "serving.batches"));
}

}  // namespace

int main() {
  bench::header("BENCH serving", "online inference: dynamic batching + cached gathers");

  MaterializeOptions materialize;
  materialize.target_vertices = 1 << 11;
  const Dataset dataset = materialize_dataset("ogbn-products", materialize);

  HybridTrainerConfig train_config;
  train_config.fanouts = {5, 5};
  train_config.real_batch_total = 128;
  train_config.real_iterations_cap = 2;
  HybridTrainer trainer(dataset, cpu_fpga_platform(2), train_config);
  trainer.train_epoch();
  const ModelSnapshot model(trainer.model());

  const std::vector<OperatingPoint> points = {
      {"1w_nocache", 1, 0, 4},
      {"2w_cache", 2, 512, 8},
      {"4w_cache", 4, 1024, 16},
  };

  bench::row({"config", "qps", "p50 ms", "p95 ms", "p99 ms", "batch", "hit rate", "rejected"},
             {12, 10, 10, 10, 10, 8, 10, 10});

  std::vector<PointResult> results;
  for (const OperatingPoint& point : points) {
    Telemetry telemetry;  // declared before the server so detach precedes teardown

    ServingConfig serving;
    serving.fanouts = {10, 5};
    serving.num_workers = point.workers;
    serving.cache_capacity_rows = point.cache_rows;
    serving.batch.max_batch_requests = 16;
    serving.batch.max_wait = 2e-3;
    serving.seed = 7;
    serving.telemetry = &telemetry;
    InferenceServer server(dataset, model, serving);

    LoadGeneratorConfig load;
    load.num_clients = point.clients;
    load.requests_per_client = 64;
    load.seeds_per_request = 4;
    load.seed = 21;
    load.telemetry = &telemetry;
    LoadGenerator generator(server, dataset, load);
    (void)generator.run();

    MetricsSnapshot snap = telemetry.registry().snapshot();
    bench::row({point.name, format_double(value_or(snap, "load.qps"), 1),
                format_double(snap.percentile_ms("serving.latency_ms", 0.50), 3),
                format_double(snap.percentile_ms("serving.latency_ms", 0.95), 3),
                format_double(snap.percentile_ms("serving.latency_ms", 0.99), 3),
                format_double(mean_batch(snap), 2), format_double(hit_rate(snap), 3),
                std::to_string(count_or(snap, "load.rejected_submits"))},
               {12, 10, 10, 10, 10, 8, 10, 10});
    results.push_back({point, std::move(snap)});
  }

  bench::JsonWriter json;
  json.begin_object();
  json.field("bench", "serving");
  json.field("dataset", dataset.info.name);
  json.field("materialized_vertices", static_cast<std::int64_t>(dataset.num_vertices()));
  json.field("fanouts", "10,5");
  json.field("source", "metrics_registry_snapshot");
  json.key("points");
  json.begin_array();
  for (const PointResult& r : results) {
    const MetricsSnapshot& snap = r.snap;
    json.begin_object();
    json.field("name", r.point.name);
    json.field("workers", r.point.workers);
    json.field("cache_rows", r.point.cache_rows);
    json.field("clients", r.point.clients);
    json.field("completed_requests", count_or(snap, "load.completed_requests"));
    json.field("rejected_submits", count_or(snap, "load.rejected_submits"));
    json.field("qps", value_or(snap, "load.qps"));
    json.field("p50_ms", snap.percentile_ms("serving.latency_ms", 0.50));
    json.field("p95_ms", snap.percentile_ms("serving.latency_ms", 0.95));
    json.field("p99_ms", snap.percentile_ms("serving.latency_ms", 0.99));
    json.field("mean_batch_requests", mean_batch(snap));
    json.field("cache_hit_rate", hit_rate(snap));
    json.end_object();
  }
  json.end_array();
  const MetricsSnapshot& headline = results.back().snap;
  json.key("headline");
  json.begin_object();
  json.field("qps", value_or(headline, "load.qps"));
  json.field("p50_ms", headline.percentile_ms("serving.latency_ms", 0.50));
  json.field("p99_ms", headline.percentile_ms("serving.latency_ms", 0.99));
  json.field("cache_hit_rate", hit_rate(headline));
  json.end_object();
  json.end_object();

  const std::string path = "BENCH_serving.json";
  json.write(path);
  std::printf("\nperf record written to %s\n", path.c_str());
  return 0;
}
