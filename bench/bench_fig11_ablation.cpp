// Regenerates Fig. 11: impact of the optimizations on the CPU-FPGA
// platform.  Four configurations, cumulative:
//   Baseline       — static offload to the FPGAs, single-stage prefetch
//   Hybrid(Static) — + CPU trainer with the performance-model mapping
//   Hybrid+DRM     — + dynamic resource management
//   Hybrid+DRM+TFP — + two-stage feature prefetching (the full system)
// Reported as speedup normalised to the baseline, per dataset x model.
//
// Also prints the DRM convergence trajectory for one configuration — the
// workload split over iterations — as the design-choice ablation
// DESIGN.md calls out.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strutil.hpp"
#include "device/spec.hpp"
#include "runtime/hybrid_trainer.hpp"

using namespace hyscale;

namespace {

Seconds run(const Dataset& ds, GnnKind kind, bool hybrid, bool drm, PipelineMode mode) {
  HybridTrainerConfig config = bench::sim_config(kind);
  config.hybrid = hybrid;
  config.drm = drm;
  config.pipeline = mode;
  // All four variants start from the same uninformed heuristic mapping,
  // so each column isolates one optimization's contribution — in
  // particular DRM's runtime correction of the static split (the paper's
  // compile-time model mapping is imperfect on real hardware; our
  // simulator would make a model-seeded mapping trivially optimal).
  config.use_task_mapper = false;
  HybridTrainer trainer(ds, cpu_fpga_platform(4), config);
  return bench::settled_epoch(trainer).epoch_time;
}

}  // namespace

int main() {
  bench::header("Figure 11", "impact of optimizations (CPU-FPGA, 4 accelerators)");
  const std::vector<int> widths = {18, 6, 10, 14, 12, 14};
  bench::row({"Dataset", "Model", "Baseline", "Hybrid(Static)", "Hybrid+DRM", "Hybrid+DRM+TFP"},
             widths);
  for (const auto& name : bench::dataset_names()) {
    const Dataset& ds = bench::scaled_dataset(name);
    for (GnnKind kind : bench::model_kinds()) {
      const Seconds baseline = run(ds, kind, false, false, PipelineMode::kSinglePrefetch);
      const Seconds hybrid = run(ds, kind, true, false, PipelineMode::kSinglePrefetch);
      const Seconds drm = run(ds, kind, true, true, PipelineMode::kSinglePrefetch);
      const Seconds tfp = run(ds, kind, true, true, PipelineMode::kTwoStagePrefetch);
      bench::row({name, gnn_kind_name(kind), "1.00x", format_double(baseline / hybrid, 2) + "x",
                  format_double(baseline / drm, 2) + "x",
                  format_double(baseline / tfp, 2) + "x"},
                 widths);
    }
  }
  std::printf("\n(paper: hybrid up to 1.13x, +DRM up to 1.33x, +TFP up to 1.79x;\n"
              " TFP gains vanish when propagation dominates, e.g. SAGE/papers100M)\n");

  // ---- DRM trajectory ablation: how the workload split converges.
  std::printf("\nDRM convergence trajectory (ogbn-papers100M, GCN):\n");
  const Dataset& ds = bench::scaled_dataset("ogbn-papers100M");
  HybridTrainerConfig config = bench::sim_config(GnnKind::kGcn);
  config.trajectory_cap = 512;
  HybridTrainer trainer(ds, cpu_fpga_platform(4), config);
  const EpochReport report = trainer.train_epoch();
  bench::row({"iter", "cpu_batch", "accel_batch", "iter_time(ms)", "bottleneck"},
             {6, 10, 12, 14, 12});
  for (std::size_t i = 0; i < report.trajectory.size(); i += 25) {
    const IterationRecord& r = report.trajectory[i];
    bench::row({std::to_string(r.iteration), std::to_string(r.workload.cpu_batch),
                std::to_string(r.workload.accel_batch),
                format_double(r.iteration_time * 1e3, 2),
                stage_name(r.drm_action.bottleneck)},
               {6, 10, 12, 14, 12});
  }
  return 0;
}
