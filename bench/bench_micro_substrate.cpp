// google-benchmark micro-benches for the substrates: GEMM, feature
// gather, neighbor sampling, source-sorted edges, gradient all-reduce,
// and graph partitioning.  These measure the REAL kernels on the host
// (wall clock), complementing the simulated-platform harnesses.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "graph/datasets.hpp"
#include "graph/generator.hpp"
#include "graph/partition.hpp"
#include "nn/model.hpp"
#include "runtime/sync.hpp"
#include "sampling/neighbor_sampler.hpp"
#include "sampling/sorted_edges.hpp"
#include "tensor/gemm.hpp"
#include "tensor/init.hpp"
#include "tensor/ops.hpp"

namespace hyscale {
namespace {

const CsrGraph& bench_graph() {
  static const CsrGraph g = [] {
    RmatParams p;
    p.scale = 13;
    p.edge_factor = 12;
    return generate_rmat(p);
  }();
  return g;
}

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  Tensor a(n, n), b(n, n), c(n, n);
  uniform_init(a, -1, 1, 1);
  uniform_init(b, -1, 1, 2);
  for (auto _ : state) {
    gemm(a, false, b, false, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmSkinny(benchmark::State& state) {
  // The GNN-update shape: (batch x f_in) * (f_in x f_out).
  const auto rows = static_cast<std::int64_t>(state.range(0));
  Tensor a(rows, 256), b(256, 256), c(rows, 256);
  uniform_init(a, -1, 1, 1);
  uniform_init(b, -1, 1, 2);
  for (auto _ : state) {
    gemm(a, false, b, false, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * rows * 256 * 256);
}
BENCHMARK(BM_GemmSkinny)->Arg(1024)->Arg(4096);

void BM_GatherRows(benchmark::State& state) {
  const auto rows = static_cast<std::int64_t>(state.range(0));
  Tensor features(1 << 13, 128);
  uniform_init(features, -1, 1, 3);
  Xoshiro256 rng(4);
  std::vector<std::int64_t> index(static_cast<std::size_t>(rows));
  for (auto& i : index) i = static_cast<std::int64_t>(rng.bounded(1 << 13));
  Tensor out;
  for (auto _ : state) {
    gather_rows(features, index, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * rows * 128 * 4);
}
BENCHMARK(BM_GatherRows)->Arg(1 << 10)->Arg(1 << 14);

void BM_NeighborSampling(benchmark::State& state) {
  const CsrGraph& g = bench_graph();
  NeighborSampler sampler(g, {25, 10}, 7);
  std::vector<VertexId> seeds;
  for (VertexId v = 0; v < g.num_vertices() && seeds.size() < 256; ++v) {
    if (g.degree(v) > 0) seeds.push_back(v);
  }
  std::int64_t edges = 0;
  for (auto _ : state) {
    const MiniBatch batch = sampler.sample(seeds);
    edges += batch.stats().total_edges();
    benchmark::DoNotOptimize(batch.blocks.front().indices.data());
  }
  state.SetItemsProcessed(edges);
  state.counters["edges/batch"] =
      static_cast<double>(edges) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_NeighborSampling);

void BM_SortedEdges(benchmark::State& state) {
  const CsrGraph& g = bench_graph();
  NeighborSampler sampler(g, {25, 10}, 7);
  std::vector<VertexId> seeds;
  for (VertexId v = 0; v < g.num_vertices() && seeds.size() < 256; ++v) {
    if (g.degree(v) > 0) seeds.push_back(v);
  }
  const MiniBatch batch = sampler.sample(seeds);
  for (auto _ : state) {
    const SortedEdgeBlock sorted = sort_edges_by_source(batch.blocks.front());
    benchmark::DoNotOptimize(sorted.src.data());
  }
  // The §IV-C reuse claim, measured on real sampled batches:
  const SortedEdgeBlock sorted = sort_edges_by_source(batch.blocks.front());
  state.counters["traffic_reduction"] =
      static_cast<double>(sorted.reads_without_reuse()) /
      static_cast<double>(std::max<std::int64_t>(1, sorted.reads_with_reuse()));
}
BENCHMARK(BM_SortedEdges);

void BM_GradientAllReduce(benchmark::State& state) {
  const int replicas = static_cast<int>(state.range(0));
  ModelConfig config;
  config.kind = GnnKind::kSage;
  config.dims = {128, 256, 172};
  std::vector<std::unique_ptr<GnnModel>> models;
  std::vector<GnnModel*> views;
  for (int r = 0; r < replicas; ++r) {
    models.push_back(std::make_unique<GnnModel>(config));
    for (auto* p : models.back()->parameters()) p->grad.fill(static_cast<float>(r));
    views.push_back(models.back().get());
  }
  const std::vector<std::int64_t> weights(static_cast<std::size_t>(replicas), 1024);
  for (auto _ : state) {
    Synchronizer::allreduce(views, weights);
    benchmark::DoNotOptimize(views.front());
  }
  state.SetBytesProcessed(state.iterations() * models.front()->num_parameters() * 4 * replicas);
}
BENCHMARK(BM_GradientAllReduce)->Arg(2)->Arg(5);

void BM_PartitionBfs(benchmark::State& state) {
  const CsrGraph& g = bench_graph();
  for (auto _ : state) {
    const Partition part = partition_bfs(g, 4, 1);
    benchmark::DoNotOptimize(part.edge_cut);
  }
}
BENCHMARK(BM_PartitionBfs);

}  // namespace
}  // namespace hyscale

BENCHMARK_MAIN();
