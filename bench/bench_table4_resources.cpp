// Regenerates Table IV: FPGA hardware parameters and resource
// utilisation, plus a design-space sweep around the paper's point
// (an ablation of the n/m parallelism choice, §IV-C).
#include <cstdio>

#include "bench_util.hpp"
#include "common/strutil.hpp"
#include "device/fpga_model.hpp"

using namespace hyscale;

int main() {
  bench::header("Table IV", "hardware parameters and resource utilisation (Alveo U250)");
  const std::vector<int> widths = {16, 8, 8, 8, 8};
  bench::row({"Parallelism(n,m)", "LUTs", "DSPs", "URAM", "BRAM"}, widths);

  const FpgaDesign paper_point{8, 2048};
  const FpgaUtilization u = estimate_utilization(paper_point);
  bench::row({"(8, 2048)", format_double(u.lut_fraction * 100, 0) + "%",
              format_double(u.dsp_fraction * 100, 0) + "%",
              format_double(u.uram_fraction * 100, 0) + "%",
              format_double(u.bram_fraction * 100, 0) + "%"},
             widths);
  std::printf("  (paper reports: LUT 72%%  DSP 90%%  URAM 48%%  BRAM 40%%)\n");

  std::printf("\nDesign-space sweep (largest power-of-two m that fits per n):\n\n");
  bench::row({"n (S-PEs)", "max m", "LUT", "DSP", "fits"}, {10, 8, 8, 8, 6});
  for (int n : {2, 4, 8, 16, 32}) {
    const int m = max_mac_units(n);
    const FpgaUtilization util = estimate_utilization({n, m > 0 ? m : 1});
    bench::row({std::to_string(n), std::to_string(m),
                format_double(util.lut_fraction * 100, 0) + "%",
                format_double(util.dsp_fraction * 100, 0) + "%",
                util.fits() ? "yes" : "no"},
               {10, 8, 8, 8, 6});
  }
  return 0;
}
