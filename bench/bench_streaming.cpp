// Streaming-serving performance record: closed-loop query load against
// the streaming inference server while a concurrent update stream
// mutates the graph, at increasing update intensity and churn (edge /
// vertex deletions).  Emits BENCH_streaming.json with ingest+retract
// throughput, staleness (publish lag), served p50/p99 (plus the
// queue-wait/compute split), and the lifecycle counters (full rebuilds
// vs in-place annihilations, TTL retirements) so later PRs have a
// freshness/latency trajectory to beat.
//
// Every reported number is read back from the telemetry plane: each
// point binds one Telemetry to the serving + streaming stack and the
// JSON record is built from a single MetricsRegistry snapshot taken
// after the load drains — the bench exercises the same instruments an
// operator would export.  Latency percentiles come from the shared
// fixed-bucket histograms (~15% bucket growth), not exact reservoirs.
//
// The headline record is the mixed 90/10 query/update point (90% of
// operations are queries, 10% update ops — the ISSUE-2 workload).  The
// churn pair (ISSUE-3/4) is a sustained cancel-heavy edge feed:
// `churn_no_gc` runs the fold-only compactor, `churn_delete_heavy`
// adds the in-place annihilation pass — compare their
// `full_compactions` within this record.  `sustained_churn_slo`
// (ISSUE-4/5) is the full lifecycle operating point: TTL eviction on,
// fixed publish cadence replaced by the SLO publisher, annihilation
// on.  Its `publisher_worst_staleness_ms` is the measured VISIBILITY
// bound, sampled at publish completion (pending age at start + publish
// cost); with folds non-blocking (ISSUE-5: the O(base) CSR build runs
// off the maintenance mutex, publishes serialize only with the short
// cut/rebase endpoints) the target is the budget ALONE — no fold-stall
// term — and `publisher_breaches` should read 0.
// tools/check_bench_slo.py gates the committed record on exactly that,
// so the stall this point once exhibited cannot silently return.
//
// The nested `sharded` record (PR-9) is the shard-scaling sweep: the
// same mixed 90/10 and delete-heavy feeds replayed against 1-, 2- and
// 4-shard partition-routed deployments (per-shard Compactor + SLO
// Publisher, CutAdopter folding publishes into consistent cuts).  Each
// point carries the facade's logical op counters, the halo-plane
// instruments (halo hits vs cross-shard owner fetches), and a
// `per_shard` array with every shard's publisher staleness.
// tools/check_bench_slo.py gates the committed record with the
// "sharded" kind: per-shard worst staleness within the point's budget,
// zero breaches, fractions in [0, 1], and no cross-shard fetches on
// the 1-shard degenerate points.
//
// The record also carries a `telemetry_overhead` note — the static
// point re-run with telemetry off vs on (interleaved, min-of-N per
// arm, exact reservoir p50 on both arms so the comparison is
// apples-to-apples), the measured cost of leaving the plane on — and a
// `diagnosis_overhead` note, the same comparison against the FULL
// diagnosis plane (stage tracing + exemplar ring + heartbeats + a
// sweeping liveness watchdog), gated at <= 3% p50.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/hyscale.hpp"

using namespace hyscale;

namespace {

struct OperatingPoint {
  std::string name;
  std::int64_t update_ops;   ///< 0 = static baseline
  std::int64_t publish_every;
  int update_threads;
  double edge_delete_fraction = 0.0;    ///< churn: update ops that retract an edge
  double vertex_delete_fraction = 0.0;  ///< churn: update ops that retire a vertex
  double delete_recent_fraction = 0.0;  ///< churn locality: deletes that cancel recent inserts
  bool annihilate = true;               ///< in-place tombstone GC before rebuilds
  double slo_budget_ms = 0.0;           ///< > 0: background publisher at this budget
  double ttl_ms = -1.0;                 ///< >= 0: TTL eviction at this idle budget
  Seconds pacing = 0.0;                 ///< ingest inter-op sleep (sustained-feed points)
  int edges_per_op = 4;                 ///< insertions per edge op
};

struct PointResult {
  OperatingPoint point;
  MetricsSnapshot snap;
};

struct ShardedPoint {
  std::string name;
  int shards;
  std::string mix;  ///< "mixed_90_10" | "delete_heavy" — which feed shape
  std::int64_t update_ops;
  int update_threads;
  double edge_delete_fraction = 0.0;
  double vertex_delete_fraction = 0.0;
  double delete_recent_fraction = 0.0;
  Seconds pacing = 0.0;
  int edges_per_op = 4;
  // Per-shard publisher budget.  Sized like sustained_churn_slo's but
  // with headroom for the extra threads a sharded session runs (N
  // publishers + the adopter on top of workers + feed): on this box a
  // runnable publisher can sit unscheduled behind all of them.
  double slo_budget_ms = 40.0;
};

struct ShardedResult {
  ShardedPoint point;
  MetricsSnapshot snap;
};

double value_or(const MetricsSnapshot& snap, const std::string& name) {
  return snap.has(name) ? snap.value(name) : 0.0;
}

std::int64_t count_or(const MetricsSnapshot& snap, const std::string& name) {
  return static_cast<std::int64_t>(value_or(snap, name));
}

double safe_ratio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

double hist_mean_ms(const MetricsSnapshot& snap, const std::string& name) {
  const MetricsSnapshot::HistogramView* h = snap.histogram(name);
  return h != nullptr ? h->mean_ms() : 0.0;
}

double hist_max_ms(const MetricsSnapshot& snap, const std::string& name) {
  const MetricsSnapshot::HistogramView* h = snap.histogram(name);
  return h != nullptr ? h->max_ms : 0.0;
}

}  // namespace

int main() {
  bench::header("BENCH streaming",
                "live serving over an evolving graph: ingest + publish + overlay sampling");

  MaterializeOptions materialize;
  materialize.target_vertices = 1 << 11;
  const Dataset dataset = materialize_dataset("ogbn-products", materialize);

  HybridTrainerConfig train_config;
  train_config.fanouts = {5, 5};
  train_config.real_batch_total = 128;
  train_config.real_iterations_cap = 2;

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 64;
  constexpr std::int64_t kQueries = kClients * kRequestsPerClient;  // 512

  const std::vector<OperatingPoint> points = {
      {"static", 0, 0, 1},
      // 90/10 mixed load: update ops = queries / 9.
      {"mixed_90_10", kQueries / 9, 16, 1},
      // update-heavy: as many update ops as queries, two ingest threads.
      {"update_heavy", kQueries, 8, 2},
      // churn pair: sustained delete-heavy EDGE feed — 8x ops at a
      // paced rate so the op-count trigger fires repeatedly; 50% of
      // ops retract an edge, 90% of those cancelling an edge the feed
      // itself just wrote (aborted orders / reverted follows).  Vertex
      // churn is kept out so rebuilds are op-driven, not scrub-driven.
      // First the PR-3 fold-only compactor, then the annihilation
      // pass: the delta between their full_compactions is the
      // tombstone-GC win.
      {"churn_no_gc", 8 * kQueries, 8, 2, 0.50, 0.0, 0.90, /*annihilate=*/false,
       /*slo_budget_ms=*/0.0, /*ttl_ms=*/-1.0, /*pacing=*/20e-6, /*edges_per_op=*/1},
      {"churn_delete_heavy", 8 * kQueries, 8, 2, 0.50, 0.0, 0.90, /*annihilate=*/true,
       /*slo_budget_ms=*/0.0, /*ttl_ms=*/-1.0, /*pacing=*/20e-6, /*edges_per_op=*/1},
      // sustained churn, full lifecycle: edge churn + vertex
      // retirement + SLO publisher (no fixed cadence) + TTL eviction +
      // annihilation.  The budget is sized to the HOST, not to
      // ambition: with folds non-blocking the bound is budget + 0, but
      // the budget itself must absorb the box's scheduling tail — this
      // container serves ~15 threads from one core, where a runnable
      // publisher can sit unscheduled for 10+ ms, so a 5 ms budget
      // would count pure scheduler stalls as breaches no publisher
      // could avoid.  tools/check_bench_slo.py holds the committed
      // record to breaches == 0 at this budget.
      {"sustained_churn_slo", 4 * kQueries, 0, 2, 0.40, 0.05, 0.70, /*annihilate=*/true,
       /*slo_budget_ms=*/25.0, /*ttl_ms=*/25.0, /*pacing=*/25e-6},
  };

  bench::row({"config", "qps", "p50 ms", "p99 ms", "ingest e/s", "lag max", "rebuild",
              "annihil", "expired"},
             {18, 9, 9, 9, 11, 9, 8, 8, 8});

  // One closed-loop session at `point` against `system`, reporting
  // through `telemetry` when non-null; returns the exact reservoir p50
  // (seconds) for the overhead note.
  const auto run_point = [&](HyScale& system, const OperatingPoint& point,
                             Telemetry* telemetry) -> Seconds {
    ServingConfig serving;
    serving.fanouts = {10, 5};
    serving.num_workers = 2;
    serving.cache_capacity_rows = 512;
    serving.batch.max_batch_requests = 16;
    serving.batch.max_wait = 2e-3;
    serving.seed = 7;
    serving.telemetry = telemetry;

    StreamingConfig streaming;
    streaming.telemetry = telemetry;

    CompactionPolicy compaction;
    compaction.max_overlay_edges = 2048;
    compaction.max_overlay_ratio = 0.10;
    compaction.annihilate_first = point.annihilate;
    PublisherPolicy publisher;
    publisher.staleness_budget = point.slo_budget_ms * 1e-3;  // <= 0: disabled
    ExpiryPolicy expiry;
    expiry.ttl = point.ttl_ms < 0.0 ? -1.0 : point.ttl_ms * 1e-3;
    expiry.sweep_interval = 5e-3;
    StreamingSession session = system.stream(serving, streaming, compaction, publisher, expiry);

    UpdateGeneratorConfig updates;
    updates.operations = point.update_ops;
    updates.num_threads = point.update_threads;
    updates.publish_every = point.publish_every;
    updates.edges_per_op = point.edges_per_op;
    updates.edge_delete_fraction = point.edge_delete_fraction;
    updates.vertex_delete_fraction = point.vertex_delete_fraction;
    updates.delete_recent_fraction = point.delete_recent_fraction;
    updates.pacing = point.pacing;
    updates.seed = 23;

    std::thread update_thread;
    if (point.update_ops > 0) {
      update_thread = std::thread([&session, updates] {
        UpdateGenerator generator(session.stream(), updates);
        (void)generator.run();
      });
    }

    LoadGeneratorConfig load;
    load.num_clients = kClients;
    load.requests_per_client = kRequestsPerClient;
    load.seeds_per_request = 4;
    load.seed = 21;
    load.telemetry = telemetry;
    LoadGenerator generator(*session.server, dataset, load);
    const LoadReport report = generator.run();
    if (update_thread.joinable()) update_thread.join();
    return report.server.latency_p50;
  };

  std::vector<PointResult> results;
  for (const OperatingPoint& point : points) {
    HyScale system(dataset, cpu_fpga_platform(2), train_config);
    system.train_epoch();

    Telemetry telemetry;  // outlives the session created inside run_point
    (void)run_point(system, point, &telemetry);
    MetricsSnapshot snap = telemetry.registry().snapshot();

    bench::row({point.name, format_double(value_or(snap, "load.qps"), 1),
                format_double(snap.percentile_ms("serving.latency_ms", 0.50), 3),
                format_double(snap.percentile_ms("serving.latency_ms", 0.99), 3),
                format_double(value_or(snap, "ingest.edges_per_second"), 0),
                format_double(hist_max_ms(snap, "stream.publish_lag_ms"), 3),
                std::to_string(count_or(snap, "stream.compactions")),
                std::to_string(count_or(snap, "stream.annihilated_ops")),
                std::to_string(count_or(snap, "stream.expired_vertices"))},
               {18, 9, 9, 9, 11, 9, 8, 8, 8});
    results.push_back({point, std::move(snap)});
  }

  // ---- Shard-scaling sweep: 1 / 2 / 4 partition-routed shards under
  // the 90/10 and delete-heavy feeds.  publish_every stays 0 — mid-run
  // visibility is the per-shard SLO publishers' + CutAdopter's job,
  // which is exactly what the per_shard staleness numbers measure.
  const std::vector<ShardedPoint> sharded_points = {
      {"sharded_90_10_s1", 1, "mixed_90_10", kQueries / 9, 1, 0.0, 0.0, 0.0,
       /*pacing=*/50e-6, /*edges_per_op=*/4},
      {"sharded_90_10_s2", 2, "mixed_90_10", kQueries / 9, 1, 0.0, 0.0, 0.0,
       /*pacing=*/50e-6, /*edges_per_op=*/4},
      {"sharded_90_10_s4", 4, "mixed_90_10", kQueries / 9, 1, 0.0, 0.0, 0.0,
       /*pacing=*/50e-6, /*edges_per_op=*/4},
      {"sharded_delete_heavy_s1", 1, "delete_heavy", 4 * kQueries, 2, 0.45, 0.05, 0.70,
       /*pacing=*/20e-6, /*edges_per_op=*/1},
      {"sharded_delete_heavy_s2", 2, "delete_heavy", 4 * kQueries, 2, 0.45, 0.05, 0.70,
       /*pacing=*/20e-6, /*edges_per_op=*/1},
      {"sharded_delete_heavy_s4", 4, "delete_heavy", 4 * kQueries, 2, 0.45, 0.05, 0.70,
       /*pacing=*/20e-6, /*edges_per_op=*/1},
  };

  std::printf("\nshard scaling (partition-routed, hash partitioner, %d-ms per-shard SLO)\n",
              static_cast<int>(sharded_points.front().slo_budget_ms));
  bench::row({"config", "qps", "p50 ms", "p99 ms", "ingest e/s", "halo hit", "xshard",
              "adopts", "worst ms"},
             {24, 9, 9, 9, 11, 9, 8, 8, 9});

  std::vector<ShardedResult> sharded_results;
  for (const ShardedPoint& point : sharded_points) {
    HyScale system(dataset, cpu_fpga_platform(2), train_config);
    system.train_epoch();
    Telemetry telemetry;

    {
      ShardedConfig sharded;
      sharded.num_shards = point.shards;
      sharded.partitioner = ShardedConfig::Partitioner::kHash;
      sharded.stream.telemetry = &telemetry;

      ServingConfig serving;
      serving.fanouts = {10, 5};
      serving.num_workers = 2;
      serving.cache_capacity_rows = 512;
      serving.batch.max_batch_requests = 16;
      serving.batch.max_wait = 2e-3;
      serving.seed = 7;
      serving.telemetry = &telemetry;

      CompactionPolicy compaction;
      compaction.max_overlay_edges = 2048;
      compaction.max_overlay_ratio = 0.10;
      PublisherPolicy publisher;
      publisher.staleness_budget = point.slo_budget_ms * 1e-3;
      ShardedStreamingSession session =
          system.stream_sharded(sharded, serving, compaction, publisher);

      UpdateGeneratorConfig updates;
      updates.operations = point.update_ops;
      updates.num_threads = point.update_threads;
      updates.publish_every = 0;
      updates.edges_per_op = point.edges_per_op;
      updates.edge_delete_fraction = point.edge_delete_fraction;
      updates.vertex_delete_fraction = point.vertex_delete_fraction;
      updates.delete_recent_fraction = point.delete_recent_fraction;
      updates.pacing = point.pacing;
      updates.seed = 23;
      std::thread update_thread([&session, updates] {
        ShardedUpdateDriver driver(session.shards(), updates);
        (void)driver.run();
      });

      LoadGeneratorConfig load;
      load.num_clients = kClients;
      load.requests_per_client = kRequestsPerClient;
      load.seeds_per_request = 4;
      load.seed = 21;
      load.telemetry = &telemetry;
      LoadGenerator generator(*session.server, dataset, load);
      (void)generator.run();
      update_thread.join();
    }  // session tears down (adopter -> publishers -> compactors -> server)

    MetricsSnapshot snap = telemetry.registry().snapshot();
    double worst_staleness_ms = 0.0;
    for (int s = 0; s < point.shards; ++s) {
      worst_staleness_ms =
          std::max(worst_staleness_ms,
                   value_or(snap, "shard" + std::to_string(s) + ".publisher.worst_staleness_ms"));
    }
    const double halo_hits = value_or(snap, "sharded.halo_hits");
    const double cross_rows = value_or(snap, "sharded.cross_shard_rows");
    bench::row({point.name, format_double(value_or(snap, "load.qps"), 1),
                format_double(snap.percentile_ms("serving.latency_ms", 0.50), 3),
                format_double(snap.percentile_ms("serving.latency_ms", 0.99), 3),
                format_double(value_or(snap, "ingest.edges_per_second"), 0),
                format_double(safe_ratio(halo_hits, halo_hits + cross_rows), 3),
                std::to_string(static_cast<std::int64_t>(cross_rows)),
                std::to_string(count_or(snap, "sharded.cut_adoptions")),
                format_double(worst_staleness_ms, 3)},
               {24, 9, 9, 9, 11, 9, 8, 8, 9});
    sharded_results.push_back({point, std::move(snap)});
  }

  // Observability overhead on the static point: three interleaved arms
  // (off / telemetry / telemetry + full diagnosis plane) so drift hits
  // all of them, min-of-N per arm (min is the low-noise estimator for
  // a latency floor).  Every arm reports the exact reservoir p50 from
  // the server's own stats — identical methodology, so each delta is
  // the cost of what that arm adds: the metrics mirrors + tracer +
  // exemplar ring for `telemetry_overhead`, plus heartbeat stamps and
  // a sweeping liveness watchdog for `diagnosis_overhead`.
  constexpr int kOverheadReps = 2;
  Seconds p50_off = 1e30, p50_on = 1e30, p50_diag = 1e30;
  {
    HyScale system(dataset, cpu_fpga_platform(2), train_config);
    system.train_epoch();
    for (int rep = 0; rep < kOverheadReps; ++rep) {
      p50_off = std::min(p50_off, run_point(system, points[0], nullptr));
      {
        Telemetry telemetry;
        p50_on = std::min(p50_on, run_point(system, points[0], &telemetry));
      }
      {
        Telemetry telemetry;
        Watchdog watchdog(telemetry);
        p50_diag = std::min(p50_diag, run_point(system, points[0], &telemetry));
      }
    }
  }
  const double overhead_pct = safe_ratio(p50_on - p50_off, p50_off) * 100.0;
  const double diagnosis_pct = safe_ratio(p50_diag - p50_off, p50_off) * 100.0;
  std::printf("\ntelemetry overhead (static point, min of %d): off p50 %.3f ms, on p50 %.3f ms "
              "(%+.2f%%), diagnosis p50 %.3f ms (%+.2f%%)\n",
              kOverheadReps, p50_off * 1e3, p50_on * 1e3, overhead_pct, p50_diag * 1e3,
              diagnosis_pct);

  bench::JsonWriter json;
  json.begin_object();
  json.field("bench", "streaming");
  json.field("dataset", dataset.info.name);
  json.field("materialized_vertices", static_cast<std::int64_t>(dataset.num_vertices()));
  json.field("fanouts", "10,5");
  json.field("queries", kQueries);
  json.field("source", "metrics_registry_snapshot");
  // Wall-clock numbers are machine-condition dependent; regressions are
  // judged point-vs-point WITHIN one record (e.g. churn_no_gc vs
  // churn_delete_heavy), not against a record from an earlier run.
  json.field("note", "compare points within this record; absolute numbers are not "
                     "comparable across machines/runs");
  json.key("points");
  json.begin_array();
  for (const PointResult& r : results) {
    const MetricsSnapshot& snap = r.snap;
    json.begin_object();
    json.field("name", r.point.name);
    json.field("update_ops", r.point.update_ops);
    json.field("update_threads", r.point.update_threads);
    json.field("publish_every", r.point.publish_every);
    json.field("edge_delete_fraction", r.point.edge_delete_fraction);
    json.field("vertex_delete_fraction", r.point.vertex_delete_fraction);
    json.field("delete_recent_fraction", r.point.delete_recent_fraction);
    json.field("annihilate", r.point.annihilate);
    json.field("slo_budget_ms", r.point.slo_budget_ms);
    json.field("ttl_ms", r.point.ttl_ms);
    json.field("completed_requests", count_or(snap, "load.completed_requests"));
    json.field("qps", value_or(snap, "load.qps"));
    json.field("p50_ms", snap.percentile_ms("serving.latency_ms", 0.50));
    json.field("p99_ms", snap.percentile_ms("serving.latency_ms", 0.99));
    json.field("queue_wait_p99_ms", snap.percentile_ms("serving.queue_wait_ms", 0.99));
    json.field("compute_mean_ms", hist_mean_ms(snap, "serving.latency_ms") -
                                      hist_mean_ms(snap, "serving.queue_wait_ms"));
    json.field("last_served_version", count_or(snap, "serving.last_served_version"));
    json.field("ingest_edges_per_second", value_or(snap, "ingest.edges_per_second"));
    json.field("accepted_edges", count_or(snap, "stream.ingested_edges"));
    json.field("removed_edges", count_or(snap, "stream.removed_edges"));
    json.field("rejected_removals", count_or(snap, "stream.rejected_removals"));
    json.field("added_vertices", count_or(snap, "stream.added_vertices"));
    json.field("removed_vertices", count_or(snap, "stream.removed_vertices"));
    json.field("recycled_vertices", count_or(snap, "stream.recycled_vertices"));
    json.field("dead_vertices", count_or(snap, "stream.dead_vertices"));
    json.field("tombstones_pending", count_or(snap, "stream.tombstones"));
    json.field("feature_updates", count_or(snap, "stream.feature_updates"));
    json.field("expired_vertices", count_or(snap, "stream.expired_vertices"));
    json.field("publish_lag_mean_ms", hist_mean_ms(snap, "stream.publish_lag_ms"));
    json.field("publish_lag_max_ms", hist_max_ms(snap, "stream.publish_lag_ms"));
    json.field("publishes", count_or(snap, "stream.publishes"));
    // publisher_* only exist when the background publisher ran: a
    // zero-filled "publisher_breaches: 0" on a point that never had a
    // publisher reads as a clean SLO run that never happened.
    if (r.point.slo_budget_ms > 0.0) {
      json.field("publisher_publishes", count_or(snap, "publisher.publishes"));
      json.field("publisher_breaches", count_or(snap, "publisher.breaches"));
      json.field("publisher_worst_staleness_ms",
                 value_or(snap, "publisher.worst_staleness_ms"));
      json.field("publisher_worst_publish_cost_ms",
                 value_or(snap, "publisher.worst_publish_cost_ms"));
    }
    json.field("full_compactions", count_or(snap, "stream.compactions"));
    json.field("annihilation_passes", count_or(snap, "compactor.annihilation_passes"));
    json.field("annihilated_ops", count_or(snap, "stream.annihilated_ops"));
    json.field("cache_hit_rate",
               safe_ratio(value_or(snap, "serving.cache_hits"),
                          value_or(snap, "serving.cache_hits") +
                              value_or(snap, "serving.cache_misses")));
    json.end_object();
  }
  json.end_array();
  // Nested shard-scaling record: its own "sharded" bench kind so
  // tools/check_bench_slo.py gates it independently of the flat
  // streaming points above.
  json.key("sharded");
  json.begin_object();
  json.field("bench", "sharded");
  json.field("dataset", dataset.info.name);
  json.field("partitioner", "hash");
  json.field("queries", kQueries);
  json.field("source", "metrics_registry_snapshot");
  json.key("points");
  json.begin_array();
  for (const ShardedResult& r : sharded_results) {
    const MetricsSnapshot& snap = r.snap;
    const double halo_hits = value_or(snap, "sharded.halo_hits");
    const double cross_rows = value_or(snap, "sharded.cross_shard_rows");
    const double gathered_rows =
        value_or(snap, "serving.cache_hits") + value_or(snap, "serving.cache_misses");
    json.begin_object();
    json.field("name", r.point.name);
    json.field("shards", static_cast<std::int64_t>(r.point.shards));
    json.field("partitioner", "hash");
    json.field("mix", r.point.mix);
    json.field("update_ops", r.point.update_ops);
    json.field("update_threads", r.point.update_threads);
    json.field("edge_delete_fraction", r.point.edge_delete_fraction);
    json.field("vertex_delete_fraction", r.point.vertex_delete_fraction);
    json.field("slo_budget_ms", r.point.slo_budget_ms);
    json.field("edge_cut_fraction", value_or(snap, "sharded.edge_cut_fraction"));
    json.field("imbalance", value_or(snap, "sharded.imbalance"));
    json.field("completed_requests", count_or(snap, "load.completed_requests"));
    json.field("qps", value_or(snap, "load.qps"));
    json.field("p50_ms", snap.percentile_ms("serving.latency_ms", 0.50));
    json.field("p99_ms", snap.percentile_ms("serving.latency_ms", 0.99));
    json.field("last_served_cut", count_or(snap, "serving.last_served_version"));
    json.field("ingest_edges_per_second", value_or(snap, "ingest.edges_per_second"));
    // Logical facade counters: each op once, however many shards it hit.
    json.field("accepted_edges", count_or(snap, "sharded.ingested_edges"));
    json.field("removed_edges", count_or(snap, "sharded.removed_edges"));
    json.field("rejected_removals", count_or(snap, "sharded.rejected_removals"));
    json.field("added_vertices", count_or(snap, "sharded.added_vertices"));
    json.field("removed_vertices", count_or(snap, "sharded.removed_vertices"));
    json.field("feature_updates", count_or(snap, "sharded.feature_updates"));
    // Halo plane: remote rows served from a fresh local mirror vs
    // fetched from their owner (dirty at gather time).
    json.field("cut_adoptions", count_or(snap, "sharded.cut_adoptions"));
    json.field("halo_refreshed_rows", count_or(snap, "sharded.halo_refreshed_rows"));
    json.field("halo_hits", static_cast<std::int64_t>(halo_hits));
    json.field("cross_shard_rows", static_cast<std::int64_t>(cross_rows));
    json.field("halo_hit_rate", safe_ratio(halo_hits, halo_hits + cross_rows));
    json.field("cross_shard_gather_fraction", safe_ratio(cross_rows, gathered_rows));
    json.field("cache_hit_rate",
               safe_ratio(value_or(snap, "serving.cache_hits"), gathered_rows));
    json.key("per_shard");
    json.begin_array();
    for (int s = 0; s < r.point.shards; ++s) {
      const std::string prefix = "shard" + std::to_string(s) + ".";
      json.begin_object();
      json.field("shard", static_cast<std::int64_t>(s));
      json.field("publishes", count_or(snap, prefix + "stream.publishes"));
      json.field("compactions", count_or(snap, prefix + "stream.compactions"));
      json.field("publisher_publishes", count_or(snap, prefix + "publisher.publishes"));
      json.field("publisher_breaches", count_or(snap, prefix + "publisher.breaches"));
      json.field("publisher_worst_staleness_ms",
                 value_or(snap, prefix + "publisher.worst_staleness_ms"));
      json.field("publisher_worst_publish_cost_ms",
                 value_or(snap, prefix + "publisher.worst_publish_cost_ms"));
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  const MetricsSnapshot& headline = results[1].snap;  // mixed 90/10
  json.key("headline");
  json.begin_object();
  json.field("name", results[1].point.name);
  json.field("qps", value_or(headline, "load.qps"));
  json.field("p50_ms", headline.percentile_ms("serving.latency_ms", 0.50));
  json.field("p99_ms", headline.percentile_ms("serving.latency_ms", 0.99));
  json.field("ingest_edges_per_second", value_or(headline, "ingest.edges_per_second"));
  json.field("publish_lag_mean_ms", hist_mean_ms(headline, "stream.publish_lag_ms"));
  json.end_object();
  json.key("telemetry_overhead");
  json.begin_object();
  json.field("point", "static");
  json.field("reps_per_arm", kOverheadReps);
  json.field("p50_off_ms", p50_off * 1e3);
  json.field("p50_on_ms", p50_on * 1e3);
  json.field("overhead_pct", overhead_pct);
  json.field("note", "exact reservoir p50 both arms, interleaved, min per arm; "
                     "acceptance bound: <= 3%");
  json.end_object();
  json.key("diagnosis_overhead");
  json.begin_object();
  json.field("point", "static");
  json.field("reps_per_arm", kOverheadReps);
  json.field("p50_off_ms", p50_off * 1e3);
  json.field("p50_on_ms", p50_diag * 1e3);
  json.field("overhead_pct", diagnosis_pct);
  json.field("note", "on arm = telemetry + stage tracing + exemplar ring + liveness "
                     "watchdog; exact reservoir p50 both arms, interleaved, min per "
                     "arm; acceptance bound: <= 3%");
  json.end_object();
  json.end_object();

  const std::string path = "BENCH_streaming.json";
  json.write(path);
  std::printf("\nperf record written to %s\n", path.c_str());
  return 0;
}
