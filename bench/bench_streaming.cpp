// Streaming-serving performance record: closed-loop query load against
// the streaming inference server while a concurrent update stream
// mutates the graph, at increasing update intensity and churn (edge /
// vertex deletions).  Emits BENCH_streaming.json with ingest+retract
// throughput, staleness (publish lag), served p50/p99 (plus the
// queue-wait/compute split), and the lifecycle counters (full rebuilds
// vs in-place annihilations, TTL retirements) so later PRs have a
// freshness/latency trajectory to beat.
//
// The headline record is the mixed 90/10 query/update point (90% of
// operations are queries, 10% update ops — the ISSUE-2 workload).  The
// churn pair (ISSUE-3/4) is a sustained cancel-heavy edge feed:
// `churn_no_gc` runs the fold-only compactor, `churn_delete_heavy`
// adds the in-place annihilation pass — compare their
// `full_compactions` within this record.  `sustained_churn_slo`
// (ISSUE-4/5) is the full lifecycle operating point: TTL eviction on,
// fixed publish cadence replaced by the SLO publisher, annihilation
// on.  Its `publisher_worst_staleness_ms` is the measured VISIBILITY
// bound, sampled at publish completion (pending age at start + publish
// cost); with folds non-blocking (ISSUE-5: the O(base) CSR build runs
// off the maintenance mutex, publishes serialize only with the short
// cut/rebase endpoints) the target is the budget ALONE — no fold-stall
// term — and `publisher_breaches` should read 0.
// tools/check_bench_slo.py gates the committed record on exactly that,
// so the stall this point once exhibited cannot silently return.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/hyscale.hpp"

using namespace hyscale;

namespace {

struct OperatingPoint {
  std::string name;
  std::int64_t update_ops;   ///< 0 = static baseline
  std::int64_t publish_every;
  int update_threads;
  double edge_delete_fraction = 0.0;    ///< churn: update ops that retract an edge
  double vertex_delete_fraction = 0.0;  ///< churn: update ops that retire a vertex
  double delete_recent_fraction = 0.0;  ///< churn locality: deletes that cancel recent inserts
  bool annihilate = true;               ///< in-place tombstone GC before rebuilds
  double slo_budget_ms = 0.0;           ///< > 0: background publisher at this budget
  double ttl_ms = -1.0;                 ///< >= 0: TTL eviction at this idle budget
  Seconds pacing = 0.0;                 ///< ingest inter-op sleep (sustained-feed points)
  int edges_per_op = 4;                 ///< insertions per edge op
};

struct PointResult {
  OperatingPoint point;
  LoadReport load;
  UpdateReport updates;
  StreamStats stream;
  std::int64_t compactions = 0;          ///< full delta->CSR rebuilds
  std::int64_t annihilation_passes = 0;  ///< trigger rounds resolved in place
  std::int64_t publisher_publishes = 0;
  std::int64_t publisher_breaches = 0;
  double publisher_worst_staleness_ms = 0.0;
  double publisher_worst_publish_cost_ms = 0.0;
};

}  // namespace

int main() {
  bench::header("BENCH streaming",
                "live serving over an evolving graph: ingest + publish + overlay sampling");

  MaterializeOptions materialize;
  materialize.target_vertices = 1 << 11;
  const Dataset dataset = materialize_dataset("ogbn-products", materialize);

  HybridTrainerConfig train_config;
  train_config.fanouts = {5, 5};
  train_config.real_batch_total = 128;
  train_config.real_iterations_cap = 2;

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 64;
  constexpr std::int64_t kQueries = kClients * kRequestsPerClient;  // 512

  const std::vector<OperatingPoint> points = {
      {"static", 0, 0, 1},
      // 90/10 mixed load: update ops = queries / 9.
      {"mixed_90_10", kQueries / 9, 16, 1},
      // update-heavy: as many update ops as queries, two ingest threads.
      {"update_heavy", kQueries, 8, 2},
      // churn pair: sustained delete-heavy EDGE feed — 8x ops at a
      // paced rate so the op-count trigger fires repeatedly; 50% of
      // ops retract an edge, 90% of those cancelling an edge the feed
      // itself just wrote (aborted orders / reverted follows).  Vertex
      // churn is kept out so rebuilds are op-driven, not scrub-driven.
      // First the PR-3 fold-only compactor, then the annihilation
      // pass: the delta between their full_compactions is the
      // tombstone-GC win.
      {"churn_no_gc", 8 * kQueries, 8, 2, 0.50, 0.0, 0.90, /*annihilate=*/false,
       /*slo_budget_ms=*/0.0, /*ttl_ms=*/-1.0, /*pacing=*/20e-6, /*edges_per_op=*/1},
      {"churn_delete_heavy", 8 * kQueries, 8, 2, 0.50, 0.0, 0.90, /*annihilate=*/true,
       /*slo_budget_ms=*/0.0, /*ttl_ms=*/-1.0, /*pacing=*/20e-6, /*edges_per_op=*/1},
      // sustained churn, full lifecycle: edge churn + vertex
      // retirement + SLO publisher (no fixed cadence) + TTL eviction +
      // annihilation.  The budget is sized to the HOST, not to
      // ambition: with folds non-blocking the bound is budget + 0, but
      // the budget itself must absorb the box's scheduling tail — this
      // container serves ~15 threads from one core, where a runnable
      // publisher can sit unscheduled for 10+ ms, so a 5 ms budget
      // would count pure scheduler stalls as breaches no publisher
      // could avoid.  tools/check_bench_slo.py holds the committed
      // record to breaches == 0 at this budget.
      {"sustained_churn_slo", 4 * kQueries, 0, 2, 0.40, 0.05, 0.70, /*annihilate=*/true,
       /*slo_budget_ms=*/25.0, /*ttl_ms=*/25.0, /*pacing=*/25e-6},
  };

  bench::row({"config", "qps", "p50 ms", "p99 ms", "ingest e/s", "lag max", "rebuild",
              "annihil", "expired"},
             {18, 9, 9, 9, 11, 9, 8, 8, 8});

  std::vector<PointResult> results;
  for (const OperatingPoint& point : points) {
    HyScale system(dataset, cpu_fpga_platform(2), train_config);
    system.train_epoch();

    ServingConfig serving;
    serving.fanouts = {10, 5};
    serving.num_workers = 2;
    serving.cache_capacity_rows = 512;
    serving.batch.max_batch_requests = 16;
    serving.batch.max_wait = 2e-3;
    serving.seed = 7;

    CompactionPolicy compaction;
    compaction.max_overlay_edges = 2048;
    compaction.max_overlay_ratio = 0.10;
    compaction.annihilate_first = point.annihilate;
    PublisherPolicy publisher;
    publisher.staleness_budget = point.slo_budget_ms * 1e-3;  // <= 0: disabled
    ExpiryPolicy expiry;
    expiry.ttl = point.ttl_ms < 0.0 ? -1.0 : point.ttl_ms * 1e-3;
    expiry.sweep_interval = 5e-3;
    StreamingSession session = system.stream(serving, {}, compaction, publisher, expiry);

    UpdateGeneratorConfig updates;
    updates.operations = point.update_ops;
    updates.num_threads = point.update_threads;
    updates.publish_every = point.publish_every;
    updates.edges_per_op = point.edges_per_op;
    updates.edge_delete_fraction = point.edge_delete_fraction;
    updates.vertex_delete_fraction = point.vertex_delete_fraction;
    updates.delete_recent_fraction = point.delete_recent_fraction;
    updates.pacing = point.pacing;
    updates.seed = 23;

    UpdateReport update_report;
    std::thread update_thread;
    if (point.update_ops > 0) {
      update_thread = std::thread([&session, updates, &update_report] {
        UpdateGenerator generator(session.stream(), updates);
        update_report = generator.run();
      });
    }

    LoadGeneratorConfig load;
    load.num_clients = kClients;
    load.requests_per_client = kRequestsPerClient;
    load.seeds_per_request = 4;
    load.seed = 21;
    LoadGenerator generator(*session.server, dataset, load);
    const LoadReport report = generator.run();
    if (update_thread.joinable()) update_thread.join();

    PointResult result;
    result.point = point;
    result.load = report;
    result.updates = update_report;
    result.stream = session.stream().stats();
    result.compactions = result.stream.compactions;
    result.annihilation_passes = session.compactor->annihilation_passes();
    if (session.publisher != nullptr) {
      result.publisher_publishes = session.publisher->publishes();
      result.publisher_breaches = session.publisher->breaches();
      result.publisher_worst_staleness_ms = session.publisher->worst_staleness() * 1e3;
      result.publisher_worst_publish_cost_ms = session.publisher->worst_publish_cost() * 1e3;
    }

    bench::row({point.name, format_double(report.qps, 1),
                format_double(report.server.latency_p50 * 1e3, 3),
                format_double(report.server.latency_p99 * 1e3, 3),
                format_double(result.updates.edges_per_second, 0),
                format_double(result.stream.publish_lag_max * 1e3, 3),
                std::to_string(result.compactions),
                std::to_string(result.stream.annihilated_ops),
                std::to_string(result.stream.expired_vertices)},
               {18, 9, 9, 9, 11, 9, 8, 8, 8});
    results.push_back(std::move(result));
  }

  bench::JsonWriter json;
  json.begin_object();
  json.field("bench", "streaming");
  json.field("dataset", dataset.info.name);
  json.field("materialized_vertices", static_cast<std::int64_t>(dataset.num_vertices()));
  json.field("fanouts", "10,5");
  json.field("queries", kQueries);
  // Wall-clock numbers are machine-condition dependent; regressions are
  // judged point-vs-point WITHIN one record (e.g. churn_no_gc vs
  // churn_delete_heavy), not against a record from an earlier run.
  json.field("note", "compare points within this record; absolute numbers are not "
                     "comparable across machines/runs");
  json.key("points");
  json.begin_array();
  for (const PointResult& r : results) {
    json.begin_object();
    json.field("name", r.point.name);
    json.field("update_ops", r.point.update_ops);
    json.field("update_threads", r.point.update_threads);
    json.field("publish_every", r.point.publish_every);
    json.field("edge_delete_fraction", r.point.edge_delete_fraction);
    json.field("vertex_delete_fraction", r.point.vertex_delete_fraction);
    json.field("delete_recent_fraction", r.point.delete_recent_fraction);
    json.field("annihilate", r.point.annihilate);
    json.field("slo_budget_ms", r.point.slo_budget_ms);
    json.field("ttl_ms", r.point.ttl_ms);
    json.field("completed_requests", r.load.completed_requests);
    json.field("qps", r.load.qps);
    json.field("p50_ms", r.load.server.latency_p50 * 1e3);
    json.field("p99_ms", r.load.server.latency_p99 * 1e3);
    json.field("queue_wait_p99_ms", r.load.server.queue_wait_p99 * 1e3);
    json.field("compute_mean_ms", r.load.server.compute_mean * 1e3);
    json.field("ingest_edges_per_second", r.updates.edges_per_second);
    json.field("accepted_edges", r.updates.accepted_edges);
    json.field("removed_edges", r.updates.removed_edges);
    json.field("rejected_removals", r.updates.rejected_removals);
    json.field("added_vertices", r.updates.added_vertices);
    json.field("removed_vertices", r.updates.removed_vertices);
    json.field("recycled_vertices", r.updates.recycled_vertices);
    json.field("dead_vertices", r.stream.dead_vertices);
    json.field("tombstones_pending", r.stream.tombstones);
    json.field("feature_updates", r.updates.feature_updates);
    json.field("expired_vertices", r.stream.expired_vertices);
    json.field("publish_lag_mean_ms", r.stream.publish_lag_mean * 1e3);
    json.field("publish_lag_max_ms", r.stream.publish_lag_max * 1e3);
    json.field("publishes", r.stream.publishes);
    json.field("publisher_publishes", r.publisher_publishes);
    json.field("publisher_breaches", r.publisher_breaches);
    json.field("publisher_worst_staleness_ms", r.publisher_worst_staleness_ms);
    json.field("publisher_worst_publish_cost_ms", r.publisher_worst_publish_cost_ms);
    json.field("full_compactions", r.compactions);
    json.field("annihilation_passes", r.annihilation_passes);
    json.field("annihilated_ops", r.stream.annihilated_ops);
    json.field("cache_hit_rate", r.load.server.cache_hit_rate);
    json.end_object();
  }
  json.end_array();
  const PointResult& headline = results[1];  // mixed 90/10
  json.key("headline");
  json.begin_object();
  json.field("name", headline.point.name);
  json.field("qps", headline.load.qps);
  json.field("p50_ms", headline.load.server.latency_p50 * 1e3);
  json.field("p99_ms", headline.load.server.latency_p99 * 1e3);
  json.field("ingest_edges_per_second", headline.updates.edges_per_second);
  json.field("publish_lag_mean_ms", headline.stream.publish_lag_mean * 1e3);
  json.end_object();
  json.end_object();

  const std::string path = "BENCH_streaming.json";
  json.write(path);
  std::printf("\nperf record written to %s\n", path.c_str());
  return 0;
}
