// BENCH hotpath — the PR-8 gather overhaul: SIMD-dispatched gather
// cost per row at fp32 vs int8 device rows, the wire-byte ratio the
// quantized path buys, the logit error it costs, and the hit-rate
// recovery the fold-time cache re-rank delivers on a shifted workload.
//
// Emits BENCH_hotpath.json; tools/check_bench_slo.py schema-gates the
// committed record (ns/row present, quantized tolerance respected,
// bytes ratio >= 3, re-rank delta >= 0).
#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/hyscale.hpp"
#include "tensor/simd.hpp"

namespace hyscale {
namespace {

struct GatherPoint {
  std::string name;
  std::int64_t rows_gathered = 0;
  double ns_per_row = 0.0;
  double device_bytes_per_row = 0.0;
  double host_bytes_per_row = 0.0;
  double hit_rate = 0.0;
};

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times the streaming gather path (cache device rows + store wire
/// rows) under a uniform random workload at one transfer precision.
GatherPoint run_gather_point(const Dataset& dataset, const std::string& name,
                             TransferPrecision precision, std::int64_t cache_rows,
                             int iterations, int batch_size) {
  StreamingGraph stream(dataset);
  stream.features().set_transfer_precision(precision);
  StaticFeatureCache cache(dataset.graph, stream.features().base(), cache_rows, precision);
  stream.attach_cache(&cache);

  std::mt19937_64 rng(7);
  const auto n = static_cast<std::uint64_t>(dataset.graph.num_vertices());
  std::vector<VertexId> batch(static_cast<std::size_t>(batch_size));
  Tensor out;
  std::vector<char> scratch;
  auto fill_batch = [&] {
    for (auto& v : batch) v = static_cast<VertexId>(rng() % n);
  };
  for (int warm = 0; warm < 5; ++warm) {  // touch every code path once
    fill_batch();
    stream.gather(std::span<const VertexId>(batch.data(), batch.size()), out, scratch);
  }

  GatherPoint point;
  point.name = name;
  const std::int64_t begin = now_ns();
  for (int it = 0; it < iterations; ++it) {
    fill_batch();
    stream.gather(std::span<const VertexId>(batch.data(), batch.size()), out, scratch);
    point.rows_gathered += batch_size;
  }
  const std::int64_t elapsed = now_ns() - begin;
  point.ns_per_row = static_cast<double>(elapsed) / static_cast<double>(point.rows_gathered);
  point.device_bytes_per_row = cache.device_row_wire_bytes();
  point.host_bytes_per_row = stream.features().row_wire_bytes();
  point.hit_rate = cache.totals().hit_rate();
  return point;
}

}  // namespace
}  // namespace hyscale

int main() {
  using namespace hyscale;
  bench::header("BENCH hotpath",
                "SIMD gather ns/row fp32 vs int8, wire-byte ratio, re-rank hit-rate recovery");
  std::printf("simd backend: %s\n", simd::backend_name());

  MaterializeOptions materialize;
  materialize.target_vertices = 1 << 11;
  materialize.label_signal = false;
  const Dataset dataset = materialize_dataset("ogbn-products", materialize);
  const std::int64_t cols = dataset.features.cols();

  // ---- gather cost per row, both precisions -----------------------------
  constexpr std::int64_t kCacheRows = 512;
  constexpr int kIterations = 200;
  constexpr int kBatch = 512;
  std::vector<GatherPoint> points;
  points.push_back(run_gather_point(dataset, "fp32_gather", TransferPrecision::kFp32,
                                    kCacheRows, kIterations, kBatch));
  points.push_back(run_gather_point(dataset, "int8_gather", TransferPrecision::kInt8,
                                    kCacheRows, kIterations, kBatch));
  for (const auto& p : points) {
    std::printf("%-12s rows=%-8lld ns/row=%-8.1f dev B/row=%-6.0f host B/row=%-6.0f hit=%.3f\n",
                p.name.c_str(), static_cast<long long>(p.rows_gathered), p.ns_per_row,
                p.device_bytes_per_row, p.host_bytes_per_row, p.hit_rate);
  }

  // ---- quantized logit error -------------------------------------------
  ModelConfig model_config;
  model_config.kind = GnnKind::kSage;
  model_config.dims = {static_cast<int>(cols), 32, dataset.info.f2};
  model_config.seed = 13;
  GnnModel model(model_config);
  std::vector<VertexId> seeds;
  for (VertexId v = 0; v < 64; ++v) seeds.push_back(v * 17 % dataset.graph.num_vertices());
  const MiniBatch mb = sample_full(dataset.graph, seeds, model.config().num_layers());

  Tensor x_exact;
  FeatureLoader exact_loader(dataset.features);
  exact_loader.load(mb, x_exact);
  const Tensor logits_fp32 = model.forward(mb, x_exact);

  Tensor round_tripped = dataset.features;
  quantize_roundtrip_int8(round_tripped);
  Tensor x_int8;
  FeatureLoader int8_loader(round_tripped);
  int8_loader.load(mb, x_int8);
  const Tensor logits_int8 = model.forward(mb, x_int8);

  const double max_logit_abs_error = Tensor::max_abs_diff(logits_fp32, logits_int8);
  constexpr double kLogitTolerance = 0.05;  // the documented int8 bound
  const double bytes_ratio =
      (static_cast<double>(cols) * 4.0) / (static_cast<double>(cols) + 4.0);
  std::printf("quantized: max |logit err| = %.6f (tolerance %.2f), bytes ratio %.2fx\n",
              max_logit_abs_error, kLogitTolerance, bytes_ratio);

  // ---- re-rank hit-rate recovery under churn ---------------------------
  constexpr std::int64_t kRerankCacheRows = 256;
  StreamingGraph stream(dataset);
  StaticFeatureCache cache(dataset.graph, stream.features().base(), kRerankCacheRows);
  stream.attach_cache(&cache);
  // The shifted workload: vertices the degree-ordered admission left
  // out — the next-tier vertices a drifting request mix lands on.
  std::vector<VertexId> targets;
  for (VertexId v = 0; v < dataset.graph.num_vertices() &&
                       targets.size() < static_cast<std::size_t>(kRerankCacheRows);
       ++v) {
    if (!cache.cached(v)) targets.push_back(v);
  }
  Tensor out;
  std::vector<char> scratch;
  auto run_window = [&](int iterations) {
    const auto before = cache.totals();
    for (int it = 0; it < iterations; ++it) {
      stream.gather(std::span<const VertexId>(targets.data(), targets.size()), out, scratch);
    }
    const auto after = cache.totals();
    const double hits = static_cast<double>(after.hits - before.hits);
    const double total = static_cast<double>((after.hits + after.misses) -
                                             (before.hits + before.misses));
    return total == 0.0 ? 0.0 : hits / total;
  };
  const double hit_rate_before = run_window(20);
  // Churn: some structural ops so the fold has a delta to merge; the
  // compaction's REBASE is where the observed-traffic re-rank fires.
  std::mt19937_64 churn_rng(23);
  const auto n = static_cast<std::uint64_t>(dataset.graph.num_vertices());
  for (int accepted = 0; accepted < 64;) {
    const auto u = static_cast<VertexId>(churn_rng() % n);
    const auto v = static_cast<VertexId>(churn_rng() % n);
    if (u != v && stream.add_edge(u, v)) ++accepted;
  }
  if (!stream.compact()) {
    std::fprintf(stderr, "compact() refused — no re-rank happened\n");
    return 1;
  }
  const double hit_rate_after = run_window(20);
  const double delta = hit_rate_after - hit_rate_before;
  std::printf("rerank: hit rate %.3f -> %.3f (delta %+.3f), readmitted=%lld\n",
              hit_rate_before, hit_rate_after, delta,
              static_cast<long long>(cache.readmitted_rows()));

  // ---- perf record ------------------------------------------------------
  bench::JsonWriter json;
  json.begin_object();
  json.field("bench", std::string("hotpath"));
  json.field("dataset", std::string("ogbn-products"));
  json.field("materialized_vertices", dataset.graph.num_vertices());
  json.field("feature_dim", cols);
  json.field("simd_backend", std::string(simd::backend_name()));
  json.field("source", std::string("streaming_gather_timing"));
  json.key("points");
  json.begin_array();
  for (const auto& p : points) {
    json.begin_object();
    json.field("name", p.name);
    json.field("rows_gathered", p.rows_gathered);
    json.field("ns_per_row", p.ns_per_row);
    json.field("device_bytes_per_row", p.device_bytes_per_row);
    json.field("host_bytes_per_row", p.host_bytes_per_row);
    json.field("hit_rate", p.hit_rate);
    json.end_object();
  }
  json.end_array();
  json.key("quantized");
  json.begin_object();
  json.field("tolerance", kLogitTolerance);
  json.field("max_logit_abs_error", max_logit_abs_error);
  json.field("bytes_ratio_fp32_over_int8", bytes_ratio);
  json.end_object();
  json.key("rerank");
  json.begin_object();
  json.field("cache_rows", kRerankCacheRows);
  json.field("hit_rate_before", hit_rate_before);
  json.field("hit_rate_after", hit_rate_after);
  json.field("delta", delta);
  json.field("readmitted_rows", cache.readmitted_rows());
  json.end_object();
  json.key("headline");
  json.begin_object();
  json.field("int8_ns_per_row", points.back().ns_per_row);
  json.field("bytes_ratio_fp32_over_int8", bytes_ratio);
  json.field("rerank_hit_rate_delta", delta);
  json.end_object();
  json.end_object();

  const std::string path = "BENCH_hotpath.json";
  json.write(path);
  std::printf("\nperf record written to %s\n", path.c_str());
  return 0;
}
