// Regenerates Table III: dataset statistics and GNN-layer dimensions,
// plus the synthetic stand-ins this repository materialises for them.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strutil.hpp"
#include "graph/datasets.hpp"

using namespace hyscale;

int main() {
  bench::header("Table III", "statistics of the datasets and GNN-layer dimensions");
  const std::vector<int> widths = {18, 14, 16, 6, 6, 6, 12};
  bench::row({"Dataset", "#Vertices", "#Edges", "f0", "f1", "f2", "#Train"}, widths);
  for (const auto& info : paper_datasets()) {
    bench::row({info.name, format_count(info.num_vertices), format_count(info.num_edges),
                std::to_string(info.f0), std::to_string(info.f1), std::to_string(info.f2),
                format_count(info.train_count)},
               widths);
  }

  std::printf("\nSynthetic stand-ins materialised for real execution (RMAT,\n"
              "degree-preserving scale-down; paper-scale statistics above feed\n"
              "the cost models):\n\n");
  bench::row({"Dataset", "#Vertices", "#Edges", "mean deg"}, {18, 14, 16, 10});
  for (const auto& name : bench::dataset_names()) {
    const Dataset& ds = bench::scaled_dataset(name);
    bench::row({name, format_count(static_cast<std::uint64_t>(ds.num_vertices())),
                format_count(static_cast<std::uint64_t>(ds.graph.num_edges())),
                format_double(ds.graph.mean_degree(), 1)},
               {18, 14, 16, 10});
  }
  return 0;
}
