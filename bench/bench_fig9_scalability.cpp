// Regenerates Fig. 9: scalability of the hybrid training system — epoch
// speedup (normalised to 1 accelerator) for 1/2/4/8/16 FPGAs on the
// three datasets x two models.
//
// Expected shape (§VI-D): good scaling to ~12 accelerators, then the CPU
// memory bandwidth saturates (the Feature Loader serves every
// accelerator's X' from host DRAM); products-GCN scales worst because it
// is PCIe-transfer-bound, which caps how much work can be offloaded.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strutil.hpp"
#include "device/spec.hpp"
#include "runtime/hybrid_trainer.hpp"

using namespace hyscale;

int main() {
  bench::header("Figure 9", "scalability: normalised speedup vs number of FPGAs");
  const std::vector<int> accel_counts = {1, 2, 4, 8, 16};

  std::vector<int> widths = {18, 6, 8, 8, 8, 8, 8};
  bench::row({"Dataset", "Model", "1", "2", "4", "8", "16"}, widths);
  for (const auto& name : bench::dataset_names()) {
    const Dataset& ds = bench::scaled_dataset(name);
    for (GnnKind kind : bench::model_kinds()) {
      std::vector<std::string> cells = {name, gnn_kind_name(kind)};
      double base_epoch = 0.0;
      for (int k : accel_counts) {
        HybridTrainer trainer(ds, cpu_fpga_platform(k), bench::sim_config(kind));
        const EpochReport report = bench::settled_epoch(trainer);
        if (k == 1) base_epoch = report.epoch_time;
        cells.push_back(format_double(base_epoch / report.epoch_time, 2) + "x");
      }
      bench::row(cells, widths);
    }
  }
  std::printf("\n(paper: near-linear to ~12 accelerators; CPU memory saturates\n"
              " beyond; products-GCN lowest due to PCIe-bound transfers)\n");
  return 0;
}
