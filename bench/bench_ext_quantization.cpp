// Extension bench (paper §VIII, future work): feature quantization to
// relieve PCIe pressure.
//
// The paper identifies its one unsolved bottleneck: "HyScale-GNN did not
// provide an effective solution if the performance is bottlenecked by
// the Data Transfer stage (i.e., limited by PCIe bandwidth)" and names
// data quantization as the planned fix.  This bench implements it:
// fp32 / fp16 / int8 wire formats on the PCIe-bound configuration the
// paper calls out (GCN on ogbn-products, CPU-FPGA), plus the
// accuracy-neutrality check for int8.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strutil.hpp"
#include "device/spec.hpp"
#include "runtime/hybrid_trainer.hpp"
#include "tensor/quantize.hpp"

using namespace hyscale;

int main() {
  bench::header("Extension (§VIII)", "feature quantization for PCIe-bound configurations");

  const std::vector<int> widths = {18, 6, 8, 14, 14, 10};
  bench::row({"Dataset", "Model", "wire", "TTran(ms)", "epoch(s)", "speedup"}, widths);
  for (const auto& name : bench::dataset_names()) {
    const Dataset& ds = bench::scaled_dataset(name);
    for (GnnKind kind : {GnnKind::kGcn}) {
      double fp32_epoch = 0.0;
      for (TransferPrecision precision :
           {TransferPrecision::kFp32, TransferPrecision::kFp16, TransferPrecision::kInt8}) {
        HybridTrainerConfig config = bench::sim_config(kind);
        config.transfer_precision = precision;
        HybridTrainer trainer(ds, cpu_fpga_platform(4), config);
        const EpochReport report = bench::settled_epoch(trainer);
        if (precision == TransferPrecision::kFp32) fp32_epoch = report.epoch_time;
        bench::row({name, gnn_kind_name(kind), transfer_precision_name(precision),
                    format_double(report.mean_times.transfer * 1e3, 2),
                    format_double(report.epoch_time, 2),
                    format_double(fp32_epoch / report.epoch_time, 2) + "x"},
                   widths);
      }
    }
  }

  // Accuracy neutrality of int8 transfers: train the learnable community
  // dataset with and without quantization.
  std::printf("\nint8 accuracy-neutrality check (community dataset, GraphSAGE):\n");
  for (TransferPrecision precision : {TransferPrecision::kFp32, TransferPrecision::kInt8}) {
    const Dataset ds = make_community_dataset(4, 128, 16, 11);
    HybridTrainerConfig config;
    config.model_kind = GnnKind::kSage;
    config.fanouts = {10, 5};
    config.learning_rate = 0.3;
    config.real_batch_total = 128;
    config.real_iterations_cap = 40;
    config.per_trainer_batch = 256;
    config.transfer_precision = precision;
    HybridTrainer trainer(ds, cpu_fpga_platform(2), config);
    for (int e = 0; e < 6; ++e) trainer.train_epoch();
    std::printf("  %s transfers: final train accuracy %.3f\n",
                transfer_precision_name(precision), trainer.evaluate_accuracy());
  }
  return 0;
}
